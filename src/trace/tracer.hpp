// Per-rank event tracing keyed to *virtual* time.
//
// The virtual multicomputer already measures everything the paper's
// analysis needs — each rank's VirtualClock carries a deterministic `now()`
// and a compute/overhead/wait TimeBreakdown — but until this layer existed
// there was no way to see *where* that time went. The Tracer records scoped
// phase spans ("dynamics.filter", "filter.fft-load-balanced", ...), instant
// markers and counter samples, each stamped with the recording rank's
// virtual clock and its breakdown snapshot, so a span's cost can be split
// into compute / message overhead / blocked-wait exactly the way the
// paper's component tables are.
//
// Design rules:
//  * The tracer NEVER advances a virtual clock. It only reads `now()` and
//    the breakdown, so enabling tracing changes virtual-time results by
//    exactly 0 (tested).
//  * Tracing is off by default; every recording call starts with one
//    relaxed atomic load, so instrumented hot paths cost nothing measurable
//    when tracing is disabled.
//  * Each rank (= host thread) writes only its own pre-allocated event
//    buffer, so recording needs no locks and host scheduling cannot
//    reorder a rank's events.
//
// Exporters (Chrome trace JSON, CSV, aggregate phase table) live in
// trace/export.hpp; process-wide named counters in trace/metrics.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "simnet/machine.hpp"
#include "simnet/virtual_clock.hpp"

namespace agcm::trace {

/// Global observability switch (tracer + metrics registry). Off by default.
bool enabled();
void set_enabled(bool on);

/// Compute / overhead / wait split, mirroring simnet::TimeBreakdown without
/// depending on the clock internals at event-storage level.
struct TimeSplit {
  double compute = 0.0;
  double overhead = 0.0;
  double wait = 0.0;

  double total() const { return compute + overhead + wait; }

  TimeSplit operator-(const TimeSplit& rhs) const {
    return {compute - rhs.compute, overhead - rhs.overhead, wait - rhs.wait};
  }
};

inline TimeSplit to_split(const simnet::TimeBreakdown& b) {
  return {b.compute, b.overhead, b.wait};
}

enum class EventKind : std::uint8_t {
  kSpanBegin,
  kSpanEnd,
  kInstant,
  kCounter,
};

/// One recorded event. Span ends carry the matching begin's name so the
/// exporters never need cross-event lookups.
struct Event {
  std::string name;
  double t = 0.0;        ///< virtual seconds on the recording rank's clock
  TimeSplit split;       ///< clock breakdown snapshot at `t` (span events)
  double value = 0.0;    ///< sample value (kCounter only)
  EventKind kind = EventKind::kInstant;
  std::int32_t depth = 0;  ///< span nesting depth at the event
};

/// A matched begin/end pair, produced by Tracer::spans().
struct SpanRecord {
  std::string name;
  int rank = 0;
  int depth = 0;         ///< 0 = top-level
  double begin = 0.0;    ///< virtual seconds
  double end = 0.0;
  TimeSplit split;       ///< breakdown delta across the span

  double duration() const { return end - begin; }
};

/// Process-wide per-rank event recorder. Thread model: `begin_run` and the
/// read accessors are called from the launcher thread between SPMD runs;
/// the record calls are called from rank threads, each touching only its
/// own rank slot.
class Tracer {
 public:
  static Tracer& instance();

  /// Maximum rank id the tracer can record for (slots are pre-allocated so
  /// rank threads never race on buffer growth).
  static constexpr int kMaxRanks = 4096;

  /// Clears all buffers and records the rank count of the upcoming run
  /// (used to attribute zero-load ranks in the aggregations). Must not be
  /// called while rank threads are recording.
  void begin_run(int nranks);

  int nranks() const { return nranks_; }

  // --- recording (no-ops while tracing is disabled) ------------------------

  void begin_span(int rank, std::string_view name, double t,
                  const TimeSplit& at);
  void end_span(int rank, double t, const TimeSplit& at);
  void instant(int rank, std::string_view name, double t);
  void counter(int rank, std::string_view name, double t, double value);

  // --- read access (between runs / after a run) ----------------------------

  /// Events recorded by `rank`, in recording order (= virtual-time order,
  /// because each rank's clock is monotone).
  const std::vector<Event>& events(int rank) const;

  /// Moves out every event recorded by `rank`, leaving an empty buffer (the
  /// storage for a chunked flush to a StreamingTraceSink — see
  /// trace/stream_sink.hpp). Must be called between runs, like the other
  /// read accessors; spans still open at the time are dropped, exactly as
  /// spans() drops unterminated spans.
  std::vector<Event> take_events(int rank);

  /// All matched spans across ranks, rank-major then begin-order.
  /// Unterminated spans (begin without end) are dropped.
  std::vector<SpanRecord> spans() const;

  std::size_t total_events() const;

 private:
  Tracer();

  struct RankBuffer {
    std::vector<Event> events;
    std::vector<std::size_t> open;  ///< indices of unmatched begins
  };

  RankBuffer* buffer(int rank);
  const RankBuffer* buffer(int rank) const;

  std::vector<std::unique_ptr<RankBuffer>> ranks_;
  int nranks_ = 0;
};

/// RAII span bound to a rank's virtual clock: records begin at
/// construction and end at destruction, with breakdown snapshots. When
/// tracing is disabled at construction the object does nothing at all.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, const simnet::VirtualClock& clock,
             int rank)
      : clock_(&clock), rank_(rank), active_(enabled()) {
    if (active_) {
      Tracer::instance().begin_span(rank_, name, clock.now(),
                                    to_split(clock.breakdown()));
    }
  }
  /// Convenience constructor for code holding a RankContext.
  ScopedSpan(std::string_view name, simnet::RankContext& ctx)
      : ScopedSpan(name, ctx.clock(), ctx.rank()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (active_) {
      Tracer::instance().end_span(rank_, clock_->now(),
                                  to_split(clock_->breakdown()));
    }
  }

 private:
  const simnet::VirtualClock* clock_;
  int rank_;
  bool active_;
};

}  // namespace agcm::trace

#define AGCM_TRACE_CONCAT_INNER(a, b) a##b
#define AGCM_TRACE_CONCAT(a, b) AGCM_TRACE_CONCAT_INNER(a, b)

/// Scoped phase span over a RankContext: AGCM_TRACE_SPAN("dynamics.fd", ctx).
#define AGCM_TRACE_SPAN(name, ctx)                                   \
  ::agcm::trace::ScopedSpan AGCM_TRACE_CONCAT(agcm_trace_span_,      \
                                              __COUNTER__)(name, ctx)

/// Scoped phase span when only a clock + rank are at hand.
#define AGCM_TRACE_SPAN_CLOCK(name, clock, rank)                     \
  ::agcm::trace::ScopedSpan AGCM_TRACE_CONCAT(agcm_trace_span_,      \
                                              __COUNTER__)(name, clock, rank)
