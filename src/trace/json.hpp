// Minimal JSON document model for the observability layer.
//
// JsonValue is an ordered, mutable JSON tree (objects preserve insertion
// order so serialised output is deterministic — a requirement for the
// bit-identical bench artefacts the harness diffs across runs). It backs
// both the Chrome-trace exporter (trace/export.hpp) and the per-bench
// `BENCH_<name>.json` reports (bench/bench_common.hpp), and ships a strict
// recursive-descent parser used by the tests to prove the exporters emit
// well-formed JSON. No external dependencies; numbers round-trip through
// shortest-exact formatting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace agcm::trace {

/// One JSON value: null, bool, number, string, array, or object.
/// Objects are stored as insertion-ordered key/value vectors.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}            // NOLINT
  JsonValue(double v) : kind_(Kind::kNumber), number_(v) {}      // NOLINT
  JsonValue(int v) : JsonValue(static_cast<double>(v)) {}        // NOLINT
  JsonValue(std::int64_t v) : JsonValue(static_cast<double>(v)) {}  // NOLINT
  JsonValue(std::uint64_t v) : JsonValue(static_cast<double>(v)) {}  // NOLINT
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(std::string_view s) : JsonValue(std::string(s)) {}   // NOLINT
  JsonValue(const char* s) : JsonValue(std::string(s)) {}        // NOLINT

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& items() const { return array_; }
  const Object& members() const { return object_; }

  /// Appends to an array (converts a null value into an array first).
  JsonValue& push_back(JsonValue v);

  /// Sets `key` in an object (converts a null value into an object first);
  /// replaces an existing member in place, preserving its position.
  JsonValue& set(std::string_view key, JsonValue v);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  JsonValue* find(std::string_view key);

  std::size_t size() const {
    return is_array() ? array_.size() : is_object() ? object_.size() : 0;
  }

  /// Compact single-line serialisation (deterministic).
  std::string dump() const;
  /// Pretty serialisation with 2-space indentation (deterministic).
  std::string dump_pretty() const;

  /// Strict parser; returns std::nullopt (with a message in `error`, when
  /// given) on any malformed input, including trailing garbage.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

  /// Escapes a string for inclusion in JSON (adds surrounding quotes).
  static std::string quote(std::string_view s);
  /// Formats a double the way dump() does (shortest exact round trip;
  /// integral values print without a decimal point).
  static std::string number_repr(double v);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Writes `content` to `path`, replacing the file; throws DataError on I/O
/// failure.
void write_text_file(const std::string& path, std::string_view content);

/// Reads a whole file; throws DataError when unreadable.
std::string read_text_file(const std::string& path);

}  // namespace agcm::trace
