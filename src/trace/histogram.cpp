#include "trace/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace agcm::trace {

int LogHistogram::bin_index(double positive_value) {
  // floor(log2(v) * kSubBins); glibc's log2 is correctly rounded, so the
  // mapping is bit-deterministic across compilers.
  return static_cast<int>(
      std::floor(std::log2(positive_value) * static_cast<double>(kSubBins)));
}

double LogHistogram::bin_representative(int index) {
  // Geometric midpoint of [2^(i/k), 2^((i+1)/k)).
  return std::exp2((static_cast<double>(index) + 0.5) /
                   static_cast<double>(kSubBins));
}

void LogHistogram::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  if (value > 0.0 && std::isfinite(value)) {
    ++bins_[bin_index(value)];
  } else {
    if (nonpos_count_ == 0) {
      nonpos_min_ = nonpos_max_ = value;
    } else {
      nonpos_min_ = std::min(nonpos_min_, value);
      nonpos_max_ = std::max(nonpos_max_, value);
    }
    ++nonpos_count_;
  }
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  for (const auto& [index, n] : other.bins_) bins_[index] += n;
  if (other.nonpos_count_ > 0) {
    if (nonpos_count_ == 0) {
      nonpos_min_ = other.nonpos_min_;
      nonpos_max_ = other.nonpos_max_;
    } else {
      nonpos_min_ = std::min(nonpos_min_, other.nonpos_min_);
      nonpos_max_ = std::max(nonpos_max_, other.nonpos_max_);
    }
    nonpos_count_ += other.nonpos_count_;
  }
}

void LogHistogram::clear() { *this = LogHistogram{}; }

std::uint64_t LogHistogram::target_rank(std::uint64_t count, double q) {
  if (count == 0) return 0;
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double exact =
      static_cast<double>(count - 1) * clamped / 100.0;
  auto rank = static_cast<std::uint64_t>(std::floor(exact + 0.5));
  return std::min<std::uint64_t>(rank, count - 1);
}

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  const std::uint64_t rank = target_rank(count_, q);

  // Walk cumulative counts: the non-positive bucket sorts before every
  // positive bin.
  std::uint64_t seen = nonpos_count_;
  if (rank < seen) {
    // Midpoint of the bucket's observed range; exact when all non-positive
    // samples share one value (the common all-zeros case).
    return std::clamp(0.5 * (nonpos_min_ + nonpos_max_), nonpos_min_,
                      nonpos_max_);
  }
  for (const auto& [index, n] : bins_) {
    seen += n;
    if (rank < seen) {
      return std::clamp(bin_representative(index), min_, max_);
    }
  }
  return max_;  // unreachable unless counts disagree; safe fallback
}

}  // namespace agcm::trace
