#include "trace/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace agcm::trace {

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  AGCM_ASSERT(kind_ == Kind::kArray);
  array_.push_back(std::move(v));
  return array_.back();
}

JsonValue& JsonValue::set(std::string_view key, JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  AGCM_ASSERT(kind_ == Kind::kObject);
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(v);
      return m.second;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
  return object_.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

JsonValue* JsonValue::find(std::string_view key) {
  return const_cast<JsonValue*>(
      static_cast<const JsonValue*>(this)->find(key));
}

std::string JsonValue::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonValue::number_repr(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
  // Integral values within the exact-double range print as integers.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips exactly.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ')
             : std::string();
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += number_repr(number_); break;
    case Kind::kString: out += quote(string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        out += quote(object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string JsonValue::dump_pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  out += '\n';
  return out;
}

// --- parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    std::optional<JsonValue> v = value();
    skip_ws();
    if (v && pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      v.reset();
    }
    if (!v && error) *error = error_;
    return v;
  }

 private:
  void fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      std::optional<std::string> s = string();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      if (text_.substr(pos_, 4) == "null") {
        pos_ += 4;
        return JsonValue();
      }
      fail("invalid literal");
      return std::nullopt;
    }
    return number();
  }

  std::optional<JsonValue> boolean() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return JsonValue(true);
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return JsonValue(false);
    }
    fail("invalid literal");
    return std::nullopt;
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      return pos_ > before;
    };
    if (!digits()) {
      fail("invalid number");
      return std::nullopt;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) {
        fail("invalid number fraction");
        return std::nullopt;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits()) {
        fail("invalid number exponent");
        return std::nullopt;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue(std::strtod(token.c_str(), nullptr));
  }

  std::optional<std::string> string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("invalid \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode (surrogate pairs are passed through as two
          // 3-byte sequences; the exporters never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape character");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> array() {
    if (!consume('[')) {
      fail("expected array");
      return std::nullopt;
    }
    JsonValue out = JsonValue::array();
    if (consume(']')) return out;
    while (true) {
      std::optional<JsonValue> item = value();
      if (!item) return std::nullopt;
      out.push_back(std::move(*item));
      if (consume(']')) return out;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> object() {
    if (!consume('{')) {
      fail("expected object");
      return std::nullopt;
    }
    JsonValue out = JsonValue::object();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      std::optional<std::string> key = string();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<JsonValue> item = value();
      if (!item) return std::nullopt;
      out.set(*key, std::move(*item));
      if (consume('}')) return out;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return Parser(text).run(error);
}

void write_text_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw DataError("cannot open '" + path + "' for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw DataError("failed writing '" + path + "'");
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DataError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace agcm::trace
