// Seed reference for the column physics: step_column exactly as it stood
// before the kernel engine (PR "vectorized single-node kernel engine"),
// preserved verbatim — per-pair emissivity recomputation, per-call band
// vectors and thomas_solve copies included — so the engine bench and the
// bit-exactness tests always compare against the true seed path (the same
// pattern as dynamics/advection_seed_ref.hpp and fft/recursive_ref.hpp).
//
// Returns the same ColumnResult (flops, precipitation, iteration counts)
// and produces bitwise-identical theta/q profiles to physics::step_column,
// which now routes through the kernels:: column sweeps (docs/kernels.md).
#pragma once

#include "physics/column.hpp"

namespace agcm::physics {

ColumnResult step_column_seed_ref(const ColumnParams& params,
                                  std::uint64_t column_id, std::int64_t step,
                                  double lat, double lon, double time_sec,
                                  std::span<double> theta,
                                  std::span<double> q);

}  // namespace agcm::physics
