#include "physics/column.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "kernels/column_kernels.hpp"
#include "kernels/workspace.hpp"
#include "linsolve/tridiag.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace agcm::physics {

const char* physics_regime_name(PhysicsRegime regime) {
  switch (regime) {
    case PhysicsRegime::kEquinox: return "equinox";
    case PhysicsRegime::kJuneSolstice: return "june-solstice";
    case PhysicsRegime::kDecemberSolstice: return "december-solstice";
  }
  return "equinox";
}

double regime_declination_rad(PhysicsRegime regime) {
  // Earth's obliquity; positive declination = sun over the northern
  // hemisphere.
  constexpr double kObliquityRad = 23.44 * std::numbers::pi / 180.0;
  switch (regime) {
    case PhysicsRegime::kEquinox: return 0.0;
    case PhysicsRegime::kJuneSolstice: return kObliquityRad;
    case PhysicsRegime::kDecemberSolstice: return -kObliquityRad;
  }
  return 0.0;
}

double cos_solar_zenith(double lat, double lon, double time_sec,
                        double declination_rad) {
  // Hour angle: the sun is overhead at lon = 0 at time 0 and sweeps
  // westward with the 24-hour cycle.
  const double hour_angle =
      2.0 * std::numbers::pi * (time_sec / 86400.0) + lon;
  return std::sin(lat) * std::sin(declination_rad) +
         std::cos(lat) * std::cos(declination_rad) * std::cos(hour_angle);
}

ColumnResult step_column(const ColumnParams& params, std::uint64_t column_id,
                         std::int64_t step, double lat, double lon,
                         double time_sec, std::span<double> theta,
                         std::span<double> q) {
  const int nlev = params.nlev;
  AGCM_ASSERT(static_cast<int>(theta.size()) == nlev);
  AGCM_ASSERT(static_cast<int>(q.size()) == nlev);
  ColumnResult result;

  // Deterministic per-(column, step) stream: identical wherever computed.
  Rng rng = Rng::for_stream(params.seed ^ (static_cast<std::uint64_t>(step) *
                                           0x9E3779B97F4A7C15ULL),
                            column_id);

  // --- cloud field: slowly varying random fraction, moister -> cloudier --
  double column_q = 0.0;
  for (double v : q) column_q += v;
  result.cloud_fraction = std::clamp(
      0.25 + 18.0 * column_q / nlev + 0.35 * (rng.uniform() - 0.5), 0.0, 1.0);

  // --- shortwave: daytime only; heats the column top-down ----------------
  const double mu =
      cos_solar_zenith(lat, lon, time_sec, params.solar_declination_rad);
  result.daytime = mu > 0.0;
  if (result.daytime) {
    const double clear = 1.0 - 0.62 * result.cloud_fraction;
    double transmitted = 1370.0 * mu * clear;  // W/m^2 at column top
    for (int k = nlev - 1; k >= 0; --k) {
      const double absorbed = transmitted * 0.06;
      transmitted -= absorbed;
      // ~1 K/day of heating at full sun, scaled to this layer's share.
      theta[static_cast<std::size_t>(k)] +=
          params.dt_sec * absorbed / (86400.0 * 10.0);
    }
    result.flops += params.flops_shortwave_per_layer * nlev *
                    (0.8 + 0.4 * result.cloud_fraction);
  }

  // One KernelWorkspace borrow per column, carved into the longwave
  // emissivity table and the four tridiagonal spans the implicit-diffusion
  // solve needs: [emis | sub | diag | sup | cp]. Growth-only, so the warm
  // path allocates nothing (tests/test_kernel_alloc.cpp). The emis segment
  // is reserved even when the shared table below supersedes it, keeping
  // the borrow size (and thus the workspace high-water mark) cache-independent.
  const std::size_t n = static_cast<std::size_t>(nlev);
  kernels::KernelWorkspace& ws = kernels::KernelWorkspace::local();
  std::span<double> scratch = ws.column_buffer(5 * n);

  // --- longwave: all layer pairs exchange (O(K^2)) -----------------------
  // Hot sweep in the kernel engine: distance-indexed emissivity table
  // (identical per-pair expression -> identical bits) and a branch-free,
  // unrolled pair loop. Bitwise identical to step_column_seed_ref. The
  // table comes from the process-wide shared cache when available (same
  // fill function, so identical bits); otherwise it is refilled into the
  // scratch segment per column exactly as the seed did.
  const double* emis = kernels::shared_longwave_emissivity(nlev);
  if (emis == nullptr) {
    kernels::fill_longwave_emissivity(scratch.data(), nlev);
    emis = scratch.data();
  }
  kernels::longwave_sweep(theta.data(), nlev, emis, params.dt_sec);
  result.flops += params.flops_longwave_per_pair * nlev * nlev;

  // --- cumulus convection: adjust conditionally unstable profiles --------
  // theta must not decrease with height by more than the (cloud-modulated)
  // threshold; unstable pairs are mixed iteratively, releasing latent heat
  // from q. The iteration count — hence the cost — depends on the actual
  // state: "the unpredictability of ... the distribution of cumulus
  // convection implies an estimation of computation load ... is required".
  const double threshold = 0.15 * (1.0 - 0.5 * result.cloud_fraction);
  const int iters = kernels::convection_sweep(
      theta.data(), q.data(), nlev, threshold, params.max_convection_iters,
      result.precipitation);
  result.convection_iters = iters;
  result.flops +=
      params.flops_convection_per_layer_iter * nlev * std::max(1, iters);

  // --- implicit vertical diffusion (boundary-layer mixing) ---------------
  // (I - K d2/dz2) x_new = x with Neumann ends: unconditionally stable, so
  // one Thomas solve per profile replaces many explicit sub-steps. Solved
  // in place (thomas_solve_into allows x to alias d) with workspace bands —
  // the seed path's per-call band vectors and profile copies are gone.
  if (params.implicit_diffusion > 0.0 && nlev >= 2) {
    const double kdiff = params.implicit_diffusion;
    const std::span<double> sub = scratch.subspan(n, n);
    const std::span<double> diag = scratch.subspan(2 * n, n);
    const std::span<double> sup = scratch.subspan(3 * n, n);
    const std::span<double> cp = scratch.subspan(4 * n, n);
    std::fill(sub.begin(), sub.end(), -kdiff);
    std::fill(diag.begin(), diag.end(), 1.0 + 2.0 * kdiff);
    std::fill(sup.begin(), sup.end(), -kdiff);
    diag.front() = 1.0 + kdiff;  // Neumann (no flux through the ends)
    diag.back() = 1.0 + kdiff;
    linsolve::thomas_solve_into(sub, diag, sup, theta, theta, cp);
    linsolve::thomas_solve_into(sub, diag, sup, q, q, cp);
    result.flops += 2.0 * linsolve::thomas_flops(nlev);
  }

  // Moist processes keep q non-negative and bounded.
  for (double& v : q) v = std::clamp(v, 0.0, 0.04);

  return result;
}

}  // namespace agcm::physics
