// AGCM/Physics driver: runs the column emulator over the local block, with
// optional Scheme-3 load balancing of columns across all nodes.
//
// Load estimation follows the paper: "a timing on the previous pass of the
// physics component was performed ... and the result was used as an
// estimate for the current physics computing load" — here at per-column
// granularity (the per-column virtual cost of the previous pass), which is
// what lets Schemes 2/3 assign integer weights to the pieces they move.
#pragma once

#include "comm/mesh2d.hpp"
#include "dynamics/state.hpp"
#include "loadbalance/planner.hpp"
#include "physics/column.hpp"

namespace agcm::physics {

struct PhysicsConfig {
  ColumnParams column;
  bool load_balance = false;
  /// Which of the paper's schemes runs when load_balance is on. Pairwise
  /// (Scheme 3, the adopted one) preserves the historical meaning of the
  /// plain load_balance flag; kNone here disables balancing outright.
  lb::Scheme lb_scheme = lb::Scheme::kPairwise;
  lb::PairwiseOptions lb_options{};  ///< Scheme 3 only; two iterations
};

/// Virtual-time accounting for the last physics pass (this rank).
struct PhysicsTimings {
  double balance_sec = 0.0;  ///< load estimation + migration + return
  double compute_sec = 0.0;  ///< column computation charged locally
  double local_flops = 0.0;  ///< flops this rank actually executed
  double total() const { return balance_sec + compute_sec; }
};

struct PhysicsStepStats {
  double imbalance_before = 0.0;  ///< estimated, from the previous pass
  double imbalance_after = 0.0;   ///< estimated, after migration
  int lb_iterations = 0;
  double precipitation = 0.0;     ///< global total this step (collective)
};

class Physics {
 public:
  Physics(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
          const grid::LatLonGrid& grid, const PhysicsConfig& config);

  /// Applies one physics step to theta/q. Collective when load balancing.
  PhysicsStepStats step(dynamics::State& state);

  const PhysicsTimings& last_timings() const { return timings_; }
  const PhysicsConfig& config() const { return config_; }

  /// Previous-pass per-column cost estimates (flops), local block layout
  /// (i fastest). Exposed for the Tables 1-3 benchmark.
  std::span<const double> column_cost_estimates() const {
    return prev_cost_;
  }

 private:
  /// Runs one column in place on scratch profiles; returns measured flops.
  double run_one_column(std::uint64_t column_id, std::int64_t step,
                        double time_sec, std::span<double> theta,
                        std::span<double> q) const;

  const comm::Mesh2D* mesh_;
  const grid::Decomp2D* decomp_;
  const grid::LatLonGrid* grid_;
  PhysicsConfig config_;
  grid::LocalBox box_;
  std::vector<double> prev_cost_;  ///< per local column, flops
  /// Per-step gather scratch (items + packed theta/q payloads), sized once
  /// in the constructor so the warm non-balanced step allocates nothing
  /// (tests/test_kernel_alloc.cpp; docs/kernels.md).
  std::vector<lb::Item> items_;
  std::vector<double> payloads_;
  PhysicsTimings timings_;
};

}  // namespace agcm::physics
