// Column physics emulator.
//
// AGCM/Physics "computes the effect of processes not resolved by the
// model's grid" — entirely column-local, no interprocessor communication
// under the 2-D decomposition (paper Section 3.4). Its computational load
// varies in space and time: "the amount of computation required at each
// grid point is determined by several factors, including whether it is day
// or night, the cloud distribution, and the amount of cumulus convection
// determined by the conditional stability of the atmosphere."
//
// This module reproduces each of those cost drivers with a real (if
// simplified) calculation:
//   * shortwave radiation    — runs only where the sun is up (solar zenith
//     from latitude, longitude and time of day); O(K) with a cloud factor,
//   * longwave radiation     — layer-pair exchange, O(K^2) (the paper's
//     single-node study picks "a routine involved in the longwave radiation
//     calculation" as a heavy kernel),
//   * cumulus convection     — iterative convective adjustment triggered by
//     conditional instability of the actual theta profile; unpredictable
//     because it depends on the evolving state and the cloud field.
//
// Every column's result and cost depend only on (inputs, global column id,
// step, seed) — never on which rank computes it — so load balancing cannot
// change the answers (the integration tests verify this).
#pragma once

#include <cstdint>
#include <span>

namespace agcm::physics {

/// Seasonal insolation regime: sets the solar declination, which moves the
/// day/night terminator and hence the *shape* of the physics load field the
/// balancing schemes have to chew on. Equinox (declination 0) lights every
/// latitude for half its longitudes — the historical default, so frozen
/// artefacts keep their bits. The solstices tilt the terminator by the
/// Earth's obliquity: one polar cap computes shortwave for every column
/// while the other computes none, concentrating load in one mesh row.
enum class PhysicsRegime {
  kEquinox,           ///< declination 0 (default)
  kJuneSolstice,      ///< declination +23.44 deg: northern summer
  kDecemberSolstice,  ///< declination -23.44 deg: southern summer
};

/// Canonical config-file name: "equinox", "june-solstice",
/// "december-solstice".
const char* physics_regime_name(PhysicsRegime regime);

/// The regime's solar declination in radians (0 for equinox).
double regime_declination_rad(PhysicsRegime regime);

struct ColumnParams {
  int nlev = 9;
  double dt_sec = 450.0;
  double solar_declination_rad = 0.0;  ///< equinox by default
  /// Cost-model coefficients (flops). Calibrated once so that (a) the
  /// 1-node 144x90x9 Paragon physics cost lands at the paper's scale
  /// (total - Dynamics in Table 4, ~5300 s/day) and (b) the day/night cost
  /// contrast produces the 35-48% pre-balancing imbalance of Tables 1-3.
  double flops_shortwave_per_layer = 560.0;
  double flops_longwave_per_pair = 30.0;
  double flops_convection_per_layer_iter = 120.0;
  int max_convection_iters = 12;
  /// Implicit vertical (boundary-layer) diffusion strength, dimensionless
  /// K dt / dz^2. Solved with the Thomas algorithm each step — the
  /// "implicit time-differencing scheme" whose solvers Section 5 lists as
  /// a reusable GCM component. 0 disables.
  double implicit_diffusion = 0.08;
  std::uint64_t seed = 42;
};

/// Inputs: theta and q profiles (bottom to top). Outputs written in place:
/// theta and q after heating/adjustment. Returns the cost in flops actually
/// expended (charged by the caller to the virtual clock and reused as the
/// next step's load estimate).
struct ColumnResult {
  double flops = 0.0;
  bool daytime = false;
  int convection_iters = 0;
  double cloud_fraction = 0.0;
  double precipitation = 0.0;  ///< column moisture removed (kg/kg summed)
};

/// `column_id` must be the *global* id (gj * nlon + gi) so results are
/// decomposition-independent; `lat`/`lon` in radians; `time_sec` since t0.
ColumnResult step_column(const ColumnParams& params, std::uint64_t column_id,
                         std::int64_t step, double lat, double lon,
                         double time_sec, std::span<double> theta,
                         std::span<double> q);

/// cos(solar zenith angle); positive means daytime.
double cos_solar_zenith(double lat, double lon, double time_sec,
                        double declination_rad);

}  // namespace agcm::physics
