#include "physics/physics.hpp"

#include <cmath>

#include "loadbalance/exchange.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace agcm::physics {

Physics::Physics(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                 const grid::LatLonGrid& grid, const PhysicsConfig& config)
    : mesh_(&mesh), decomp_(&decomp), grid_(&grid), config_(config),
      box_(decomp.box(mesh.coord())) {
  check_config(config.column.nlev == grid.nlev(),
               "physics nlev must match the grid");
  // First pass: no history yet; assume uniform cost.
  const auto ncols =
      static_cast<std::size_t>(box_.ni) * static_cast<std::size_t>(box_.nj);
  prev_cost_.assign(ncols, 1.0);
  // Gather scratch sized once here: the steady-state step reuses it.
  items_.resize(ncols);
  payloads_.resize(ncols * 2 * static_cast<std::size_t>(grid.nlev()));
}

double Physics::run_one_column(std::uint64_t column_id, std::int64_t step,
                               double time_sec, std::span<double> theta,
                               std::span<double> q) const {
  const int nlon = grid_->nlon();
  const auto gi = static_cast<int>(column_id % static_cast<std::uint64_t>(nlon));
  const auto gj = static_cast<int>(column_id / static_cast<std::uint64_t>(nlon));
  const double lat = grid_->lat_center(gj);
  const double lon = grid_->lon_center(gi);
  const ColumnResult result = step_column(config_.column, column_id, step,
                                          lat, lon, time_sec, theta, q);
  return result.flops;
}

PhysicsStepStats Physics::step(dynamics::State& state) {
  auto& clock = mesh_->world().context().clock();
  timings_ = PhysicsTimings{};
  PhysicsStepStats stats;

  const int nlev = grid_->nlev();
  const auto ncols = static_cast<std::size_t>(box_.ni) *
                     static_cast<std::size_t>(box_.nj);
  const int per_item = 2 * nlev;  // theta + q profiles
  const auto nlon = static_cast<std::uint64_t>(grid_->nlon());

  // Gather column payloads and load estimates (previous-pass costs) into
  // the member scratch (sized in the constructor — no per-step allocation).
  std::vector<lb::Item>& items = items_;
  std::vector<double>& payloads = payloads_;
  AGCM_ASSERT(items.size() == ncols);
  AGCM_ASSERT(payloads.size() == ncols * static_cast<std::size_t>(per_item));
  {
    std::size_t c = 0;
    for (int j = 0; j < box_.nj; ++j) {
      for (int i = 0; i < box_.ni; ++i, ++c) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(box_.j0 + j) * nlon +
            static_cast<std::uint64_t>(box_.i0 + i);
        items[c] = {id, prev_cost_[c]};
        double* p = payloads.data() + c * static_cast<std::size_t>(per_item);
        for (int k = 0; k < nlev; ++k) {
          p[k] = state.theta(i, j, k);
          p[nlev + k] = state.q(i, j, k);
        }
      }
    }
    clock.memory_traffic(static_cast<double>(payloads.size()) *
                         sizeof(double));
  }

  simnet::RankContext& ctx = mesh_->world().context();

  if (!config_.load_balance || config_.lb_scheme == lb::Scheme::kNone) {
    // Straight local pass.
    AGCM_TRACE_SPAN("physics.columns", ctx);
    const double t0 = clock.now();
    double local_flops = 0.0;
    std::size_t c = 0;
    for (int j = 0; j < box_.nj; ++j) {
      for (int i = 0; i < box_.ni; ++i, ++c) {
        double* p = payloads.data() + c * static_cast<std::size_t>(per_item);
        const double flops = run_one_column(
            items[c].id, state.step, state.time_sec,
            std::span<double>(p, static_cast<std::size_t>(nlev)),
            std::span<double>(p + nlev, static_cast<std::size_t>(nlev)));
        prev_cost_[c] = flops;
        local_flops += flops;
        for (int k = 0; k < nlev; ++k) {
          state.theta(i, j, k) = p[k];
          state.q(i, j, k) = p[nlev + k];
        }
      }
    }
    clock.compute(local_flops);
    timings_.local_flops = local_flops;
    timings_.compute_sec = clock.now() - t0;
    return stats;
  }

  // --- load-balanced pass (configured scheme) ----------------------------
  // All three executors return the same BalanceResult shape, and
  // return_to_owners below routes by held origins, so everything from the
  // held-column compute on is scheme-agnostic.
  const double t_bal0 = clock.now();
  lb::BalanceResult balanced;
  {
    AGCM_TRACE_SPAN("physics.balance", ctx);
    switch (config_.lb_scheme) {
      case lb::Scheme::kCyclic:
        balanced =
            lb::balance_cyclic(mesh_->world(), items, payloads, per_item);
        break;
      case lb::Scheme::kSortedGreedy:
        balanced = lb::balance_sorted_greedy(mesh_->world(), items, payloads,
                                             per_item);
        break;
      case lb::Scheme::kNone:  // handled above; kept for -Wswitch
      case lb::Scheme::kPairwise:
        balanced = lb::balance_pairwise(mesh_->world(), items, payloads,
                                        per_item, config_.lb_options);
        break;
    }
  }
  stats.imbalance_before = balanced.imbalance_before;
  stats.imbalance_after = balanced.imbalance_after;
  stats.lb_iterations = balanced.iterations;
  timings_.balance_sec = clock.now() - t_bal0;

  // Process the held columns; results carry the updated profiles plus the
  // measured cost (which becomes the owner's next estimate).
  const int per_result = per_item + 1;
  std::vector<double> results(balanced.held_items.size() *
                              static_cast<std::size_t>(per_result));
  const double t_comp0 = clock.now();
  double local_flops = 0.0;
  std::vector<double> held_payloads = balanced.held_payloads;
  {
    AGCM_TRACE_SPAN("physics.columns", ctx);
    for (std::size_t c = 0; c < balanced.held_items.size(); ++c) {
      double* p =
          held_payloads.data() + c * static_cast<std::size_t>(per_item);
      const double flops = run_one_column(
          balanced.held_items[c].id, state.step, state.time_sec,
          std::span<double>(p, static_cast<std::size_t>(nlev)),
          std::span<double>(p + nlev, static_cast<std::size_t>(nlev)));
      local_flops += flops;
      double* r = results.data() + c * static_cast<std::size_t>(per_result);
      for (int x = 0; x < per_item; ++x) r[x] = p[x];
      r[per_item] = flops;
    }
    clock.compute(local_flops);
  }
  timings_.local_flops = local_flops;
  timings_.compute_sec = clock.now() - t_comp0;

  // Route results home and write them back.
  const double t_ret0 = clock.now();
  std::vector<double> mine;
  {
    AGCM_TRACE_SPAN("physics.balance", ctx);
    mine = lb::return_to_owners(mesh_->world(), balanced, results, per_result,
                                static_cast<int>(ncols));
  }
  {
    std::size_t c = 0;
    for (int j = 0; j < box_.nj; ++j) {
      for (int i = 0; i < box_.ni; ++i, ++c) {
        const double* r =
            mine.data() + c * static_cast<std::size_t>(per_result);
        for (int k = 0; k < nlev; ++k) {
          state.theta(i, j, k) = r[k];
          state.q(i, j, k) = r[nlev + k];
        }
        prev_cost_[c] = r[per_item];
      }
    }
    clock.memory_traffic(static_cast<double>(mine.size()) * sizeof(double));
  }
  timings_.balance_sec += clock.now() - t_ret0;
  return stats;
}

}  // namespace agcm::physics
