// The pre-engine column physics, verbatim (see the header).
// Do not "improve" this file: its whole value is that it is the seed.
#include "physics/column_seed_ref.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linsolve/tridiag.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace agcm::physics {

ColumnResult step_column_seed_ref(const ColumnParams& params,
                                  std::uint64_t column_id, std::int64_t step,
                                  double lat, double lon, double time_sec,
                                  std::span<double> theta,
                                  std::span<double> q) {
  const int nlev = params.nlev;
  AGCM_ASSERT(static_cast<int>(theta.size()) == nlev);
  AGCM_ASSERT(static_cast<int>(q.size()) == nlev);
  ColumnResult result;

  // Deterministic per-(column, step) stream: identical wherever computed.
  Rng rng = Rng::for_stream(params.seed ^ (static_cast<std::uint64_t>(step) *
                                           0x9E3779B97F4A7C15ULL),
                            column_id);

  // --- cloud field: slowly varying random fraction, moister -> cloudier --
  double column_q = 0.0;
  for (double v : q) column_q += v;
  result.cloud_fraction = std::clamp(
      0.25 + 18.0 * column_q / nlev + 0.35 * (rng.uniform() - 0.5), 0.0, 1.0);

  // --- shortwave: daytime only; heats the column top-down ----------------
  const double mu =
      cos_solar_zenith(lat, lon, time_sec, params.solar_declination_rad);
  result.daytime = mu > 0.0;
  if (result.daytime) {
    const double clear = 1.0 - 0.62 * result.cloud_fraction;
    double transmitted = 1370.0 * mu * clear;  // W/m^2 at column top
    for (int k = nlev - 1; k >= 0; --k) {
      const double absorbed = transmitted * 0.06;
      transmitted -= absorbed;
      // ~1 K/day of heating at full sun, scaled to this layer's share.
      theta[static_cast<std::size_t>(k)] +=
          params.dt_sec * absorbed / (86400.0 * 10.0);
    }
    result.flops += params.flops_shortwave_per_layer * nlev *
                    (0.8 + 0.4 * result.cloud_fraction);
  }

  // --- longwave: all layer pairs exchange (O(K^2)) -----------------------
  for (int k1 = 0; k1 < nlev; ++k1) {
    double exchange = 0.0;
    for (int k2 = 0; k2 < nlev; ++k2) {
      if (k1 == k2) continue;
      const double t1 = theta[static_cast<std::size_t>(k1)];
      const double t2 = theta[static_cast<std::size_t>(k2)];
      const double emissivity =
          0.015 / (1.0 + std::abs(k1 - k2));  // nearer layers couple harder
      exchange += emissivity * (t2 - t1);
    }
    // Net cooling to space from every layer.
    theta[static_cast<std::size_t>(k1)] +=
        params.dt_sec * (exchange - 0.8) / 86400.0;
  }
  result.flops += params.flops_longwave_per_pair * nlev * nlev;

  // --- cumulus convection: adjust conditionally unstable profiles --------
  // theta must not decrease with height by more than the (cloud-modulated)
  // threshold; unstable pairs are mixed iteratively, releasing latent heat
  // from q. The iteration count — hence the cost — depends on the actual
  // state: "the unpredictability of ... the distribution of cumulus
  // convection implies an estimation of computation load ... is required".
  const double threshold = 0.15 * (1.0 - 0.5 * result.cloud_fraction);
  int iters = 0;
  while (iters < params.max_convection_iters) {
    bool unstable = false;
    for (int k = 0; k + 1 < nlev; ++k) {
      const double lower = theta[static_cast<std::size_t>(k)];
      const double upper = theta[static_cast<std::size_t>(k + 1)];
      if (upper - lower < -threshold) {
        const double mixed = 0.5 * (lower + upper);
        theta[static_cast<std::size_t>(k)] = mixed - 0.25 * threshold;
        theta[static_cast<std::size_t>(k + 1)] = mixed + 0.25 * threshold;
        // Condensation: moisture converts to latent heating + rain.
        double& qk = q[static_cast<std::size_t>(k)];
        const double condensed = 0.1 * qk;
        qk -= condensed;
        result.precipitation += condensed;
        theta[static_cast<std::size_t>(k)] += 120.0 * condensed;
        unstable = true;
      }
    }
    ++iters;
    if (!unstable) break;
  }
  result.convection_iters = iters;
  result.flops +=
      params.flops_convection_per_layer_iter * nlev * std::max(1, iters);

  // --- implicit vertical diffusion (boundary-layer mixing) ---------------
  // (I - K d2/dz2) x_new = x with Neumann ends: unconditionally stable, so
  // one Thomas solve per profile replaces many explicit sub-steps.
  if (params.implicit_diffusion > 0.0 && nlev >= 2) {
    const double kdiff = params.implicit_diffusion;
    std::vector<double> sub(static_cast<std::size_t>(nlev), -kdiff);
    std::vector<double> diag(static_cast<std::size_t>(nlev), 1.0 + 2.0 * kdiff);
    std::vector<double> sup(static_cast<std::size_t>(nlev), -kdiff);
    diag.front() = 1.0 + kdiff;  // Neumann (no flux through the ends)
    diag.back() = 1.0 + kdiff;
    const auto theta_new = linsolve::thomas_solve(
        sub, diag, sup, std::vector<double>(theta.begin(), theta.end()));
    const auto q_new = linsolve::thomas_solve(
        sub, diag, sup, std::vector<double>(q.begin(), q.end()));
    std::copy(theta_new.begin(), theta_new.end(), theta.begin());
    std::copy(q_new.begin(), q_new.end(), q.begin());
    result.flops += 2.0 * linsolve::thomas_flops(nlev);
  }

  // Moist processes keep q non-negative and bounded.
  for (double& v : q) v = std::clamp(v, 0.0, 0.04);

  return result;
}

}  // namespace agcm::physics
