// Process-wide FFT plan cache: one immutable FftPlan per transform length,
// shared by every rank of every concurrently running Machine.
//
// Plan construction is deterministic (stage tables and twiddle factors are
// pure functions of n), so a shared plan is bit-identical to a per-rank one
// — the property tests/test_fft.cpp already pins for the per-rank cache.
// Plans are handed out as shared_ptr<const FftPlan>: a campaign cell that
// outlives a clear_plan_cache() keeps its plans alive through its own
// references. fft::FftWorkspace::plan() memoizes the shared_ptr per rank,
// so the warm transform path stays lock-free and allocation-free exactly
// as before (tests/test_fft_alloc.cpp).
//
// Participates in util::SharedCaches: when the process-wide toggle is off,
// shared_plan() builds an unshared plan (the historical cold path).
#pragma once

#include <memory>

#include "fft/fft.hpp"

namespace agcm::fft {

/// The shared plan for length n; built on first request under a mutex,
/// immutable and never evicted (until clear_plan_cache) thereafter.
/// With util::SharedCaches disabled, returns a fresh unshared plan.
std::shared_ptr<const FftPlan> shared_plan(int n);

/// Drops all cached plans (outstanding references stay valid). Wired into
/// util::SharedCaches::clear_all().
void clear_plan_cache();

}  // namespace agcm::fft
