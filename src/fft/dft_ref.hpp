// Direct O(n^2) discrete Fourier transform, used as the correctness oracle
// for the FFT and as the cost anchor for the paper's convolution-based
// filtering (equation (2) is mathematically a direct transform).
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace agcm::fft {

/// X[k] = sum_j x[j] exp(-2*pi*i*j*k/n). Direct evaluation.
std::vector<std::complex<double>> dft(std::span<const std::complex<double>> x);

/// Inverse with 1/n normalisation.
std::vector<std::complex<double>> idft(
    std::span<const std::complex<double>> x);

/// Circular convolution of two real sequences of equal length n, direct
/// O(n^2) evaluation: out[i] = sum_s a[s] * b[(i - s) mod n].
std::vector<double> circular_convolution(std::span<const double> a,
                                         std::span<const double> b);

/// Flop count of one direct length-n transform (virtual-clock accounting).
double dft_flops(int n);

/// Flop count of one length-n circular convolution.
double convolution_flops(int n);

}  // namespace agcm::fft
