#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "fft/workspace.hpp"
#include "kernels/simd/dispatch.hpp"
#include "util/error.hpp"

namespace agcm::fft {

namespace {

/// Largest generic radix whose gather buffer lives on the stack. Larger
/// prime factors fall back to the plan's scratch vector (see fft.hpp).
constexpr int kStackRadix = 16;

inline Complex unit_root(double numerator, double denominator) {
  const double angle = -2.0 * std::numbers::pi * numerator / denominator;
  return {std::cos(angle), std::sin(angle)};
}

/// Multiplies by +i.
inline Complex mul_i(const Complex& c) { return {-c.imag(), c.real()}; }

}  // namespace

std::vector<int> prime_factors(int n) {
  AGCM_ASSERT(n >= 1);
  std::vector<int> factors;
  for (int p = 2; p * p <= n; p == 2 ? p = 3 : p += 2) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

FftPlan::FftPlan(int n) : n_(n) {
  check_config(n >= 1, "FFT length must be >= 1");

  // --- Radix schedule -----------------------------------------------------
  // Pairs of 2s fuse into radix-4 stages (fewer passes over the data, and
  // the radix-4 butterfly needs no real multiplications beyond the
  // twiddles). Execution order runs the largest radices at the smallest
  // sub-transform size; any order is mathematically valid as long as the
  // digit-reversal permutation below is derived from the same sequence.
  const std::vector<int> primes = prime_factors(n);
  std::vector<int> radices;
  int twos = 0;
  for (int p : primes) {
    if (p == 2) {
      ++twos;
    } else {
      radices.push_back(p);
    }
  }
  for (int t = 0; t < twos / 2; ++t) radices.push_back(4);
  if (twos % 2 != 0) radices.push_back(2);
  std::sort(radices.begin(), radices.end(), std::greater<int>());

  // --- Digit-reversal permutation ----------------------------------------
  // The decimation-in-time recursion splits by the radices in *reverse*
  // execution order (outermost split first); the iterative form needs the
  // inputs pre-permuted by the corresponding mixed-radix digit reversal.
  const std::vector<int> split(radices.rbegin(), radices.rend());
  const auto un = static_cast<std::size_t>(n);
  std::vector<int> dest(un);  // dest[j] = digit-reversed position of input j
  for (int j = 0; j < n; ++j) {
    int tmp = j;
    int p = 0;
    for (int r : split) {
      p = p * r + tmp % r;
      tmp /= r;
    }
    dest[static_cast<std::size_t>(j)] = p;
  }
  // Flatten the permutation into a swap program so it can be applied
  // in place with zero scratch: walking the swaps left-to-right moves
  // every element to its digit-reversed slot.
  std::vector<int> src(un);  // src[pos] = input index that must end at pos
  for (int j = 0; j < n; ++j) src[static_cast<std::size_t>(dest[static_cast<std::size_t>(j)])] = j;
  std::vector<int> cur(un), loc(un);  // cur[pos] = input now at pos; inverse
  std::iota(cur.begin(), cur.end(), 0);
  std::iota(loc.begin(), loc.end(), 0);
  for (int pos = 0; pos < n; ++pos) {
    const int want = src[static_cast<std::size_t>(pos)];
    if (cur[static_cast<std::size_t>(pos)] == want) continue;
    const int where = loc[static_cast<std::size_t>(want)];
    perm_swaps_.push_back(pos);
    perm_swaps_.push_back(where);
    std::swap(cur[static_cast<std::size_t>(pos)],
              cur[static_cast<std::size_t>(where)]);
    loc[static_cast<std::size_t>(cur[static_cast<std::size_t>(pos)])] = pos;
    loc[static_cast<std::size_t>(cur[static_cast<std::size_t>(where)])] = where;
  }

  // --- Stage plan: per-stage twiddle tables + generic-radix roots --------
  int m = 1;
  int max_generic = 0;
  for (int r : radices) {
    Stage st{r, m, tw_fwd_.size(), 0, 0};
    const int L = r * m;
    for (int q = 0; q < m; ++q) {
      for (int i = 1; i < r; ++i) {
        tw_fwd_.push_back(unit_root(static_cast<double>(q) * i, L));
      }
    }
    if (r == 4) {
      // Split per-leg copy of the same twiddles for the SIMD butterfly:
      // tw1 then tw2 then tw3, each m consecutive complexes, so vector
      // lanes load consecutive q instead of gathering with stride 3.
      st.tw4_off = tw4_fwd_.size();
      for (int i = 1; i < r; ++i) {
        for (int q = 0; q < m; ++q) {
          tw4_fwd_.push_back(
              tw_fwd_[st.tw_off + static_cast<std::size_t>(q) * 3 +
                      static_cast<std::size_t>(i - 1)]);
        }
      }
    }
    if (r != 2 && r != 3 && r != 4 && r != 5) {
      st.root_off = root_fwd_.size();
      for (int j = 0; j < r; ++j) {
        root_fwd_.push_back(unit_root(j, r));
      }
      max_generic = std::max(max_generic, r);
    }
    stages_.push_back(st);
    m = L;
  }
  AGCM_ASSERT(m == n_);

  tw_inv_.resize(tw_fwd_.size());
  std::transform(tw_fwd_.begin(), tw_fwd_.end(), tw_inv_.begin(),
                 [](const Complex& c) { return std::conj(c); });
  tw4_inv_.resize(tw4_fwd_.size());
  std::transform(tw4_fwd_.begin(), tw4_fwd_.end(), tw4_inv_.begin(),
                 [](const Complex& c) { return std::conj(c); });
  root_inv_.resize(root_fwd_.size());
  std::transform(root_fwd_.begin(), root_fwd_.end(), root_inv_.begin(),
                 [](const Complex& c) { return std::conj(c); });
  if (max_generic > kStackRadix) {
    generic_scratch_.resize(static_cast<std::size_t>(max_generic));
  }
}

std::vector<int> FftPlan::stage_radices() const {
  std::vector<int> out;
  out.reserve(stages_.size());
  for (const Stage& st : stages_) out.push_back(st.radix);
  return out;
}

void FftPlan::apply_permutation(Complex* a) const {
  for (std::size_t s = 0; s < perm_swaps_.size(); s += 2) {
    std::swap(a[perm_swaps_[s]], a[perm_swaps_[s + 1]]);
  }
}

template <bool kInverse, bool kSimd>
void FftPlan::run_stages(Complex* a) const {
  const Complex* tw_base = (kInverse ? tw_inv_ : tw_fwd_).data();
  const Complex* tw4_base = (kInverse ? tw4_inv_ : tw4_fwd_).data();
  const Complex* root_base = (kInverse ? root_inv_ : root_fwd_).data();
  for (const Stage& st : stages_) {
    const int m = st.m;
    const int r = st.radix;
    const int L = r * m;
    const Complex* tw = tw_base + st.tw_off;
    switch (r) {
      case 2: {
        if constexpr (kSimd) {
          // Radix-2 twiddles are already one complex per q (stride 1), so
          // the dispatch kernel consumes the shared table directly.
          simd::ops().fft_radix2_stage(reinterpret_cast<double*>(a), n_, m,
                                       reinterpret_cast<const double*>(tw));
          break;
        }
        for (int b = 0; b < n_; b += L) {
          Complex* p0 = a + b;
          Complex* p1 = p0 + m;
          for (int q = 0; q < m; ++q) {
            const Complex u = p0[q];
            const Complex t = p1[q] * tw[q];
            p0[q] = u + t;
            p1[q] = u - t;
          }
        }
        break;
      }
      case 3: {
        // y1/y2 = (x0 - (x1+x2)/2) +- i*s*(x1-x2), s = -sin(60deg) fwd.
        constexpr double kSin60 = 0.86602540378443864676;
        const double s = kInverse ? kSin60 : -kSin60;
        for (int b = 0; b < n_; b += L) {
          Complex* p0 = a + b;
          Complex* p1 = p0 + m;
          Complex* p2 = p1 + m;
          for (int q = 0; q < m; ++q) {
            const Complex x0 = p0[q];
            const Complex x1 = p1[q] * tw[2 * q];
            const Complex x2 = p2[q] * tw[2 * q + 1];
            const Complex t1 = x1 + x2;
            const Complex t2 = x0 - 0.5 * t1;
            const Complex d = x1 - x2;
            const Complex t3(-s * d.imag(), s * d.real());
            p0[q] = x0 + t1;
            p1[q] = t2 + t3;
            p2[q] = t2 - t3;
          }
        }
        break;
      }
      case 4: {
        if constexpr (kSimd) {
          const Complex* t1 = tw4_base + st.tw4_off;
          simd::ops().fft_radix4_stage(
              reinterpret_cast<double*>(a), n_, m,
              reinterpret_cast<const double*>(t1),
              reinterpret_cast<const double*>(t1 + m),
              reinterpret_cast<const double*>(t1 + 2 * m), kInverse);
          break;
        }
        for (int b = 0; b < n_; b += L) {
          Complex* p0 = a + b;
          Complex* p1 = p0 + m;
          Complex* p2 = p1 + m;
          Complex* p3 = p2 + m;
          for (int q = 0; q < m; ++q) {
            const Complex x0 = p0[q];
            const Complex x1 = p1[q] * tw[3 * q];
            const Complex x2 = p2[q] * tw[3 * q + 1];
            const Complex x3 = p3[q] * tw[3 * q + 2];
            const Complex t0 = x0 + x2;
            const Complex t1 = x0 - x2;
            const Complex t2 = x1 + x3;
            const Complex d = x1 - x3;
            // forward: -i*d; inverse: +i*d.
            const Complex jd = kInverse ? mul_i(d) : Complex(d.imag(), -d.real());
            p0[q] = t0 + t2;
            p1[q] = t1 + jd;
            p2[q] = t0 - t2;
            p3[q] = t1 - jd;
          }
        }
        break;
      }
      case 5: {
        constexpr double kC1 = 0.30901699437494742410;   // cos(2 pi / 5)
        constexpr double kS1 = 0.95105651629515357212;   // sin(2 pi / 5)
        constexpr double kC2 = -0.80901699437494742410;  // cos(4 pi / 5)
        constexpr double kS2 = 0.58778525229247312917;   // sin(4 pi / 5)
        const double sg = kInverse ? 1.0 : -1.0;
        for (int b = 0; b < n_; b += L) {
          Complex* p0 = a + b;
          Complex* p1 = p0 + m;
          Complex* p2 = p1 + m;
          Complex* p3 = p2 + m;
          Complex* p4 = p3 + m;
          for (int q = 0; q < m; ++q) {
            const Complex x0 = p0[q];
            const Complex x1 = p1[q] * tw[4 * q];
            const Complex x2 = p2[q] * tw[4 * q + 1];
            const Complex x3 = p3[q] * tw[4 * q + 2];
            const Complex x4 = p4[q] * tw[4 * q + 3];
            const Complex t1 = x1 + x4;
            const Complex t2 = x2 + x3;
            const Complex t3 = x1 - x4;
            const Complex t4 = x2 - x3;
            const Complex m1 = x0 + kC1 * t1 + kC2 * t2;
            const Complex m2 = x0 + kC2 * t1 + kC1 * t2;
            const Complex u1 = kS1 * t3 + kS2 * t4;
            const Complex u2 = kS2 * t3 - kS1 * t4;
            const Complex iu1 = sg * mul_i(u1);
            const Complex iu2 = sg * mul_i(u2);
            p0[q] = x0 + t1 + t2;
            p1[q] = m1 + iu1;
            p2[q] = m2 + iu2;
            p3[q] = m2 - iu2;
            p4[q] = m1 - iu1;
          }
        }
        break;
      }
      default: {
        // Generic-radix butterfly: gather the r twiddled inputs, then a
        // direct r-point DFT against the precomputed root table.
        const Complex* root = root_base + st.root_off;
        Complex stack_buf[kStackRadix];
        Complex* buf =
            r <= kStackRadix ? stack_buf : generic_scratch_.data();
        for (int b = 0; b < n_; b += L) {
          for (int q = 0; q < m; ++q) {
            Complex* p = a + b + q;
            buf[0] = p[0];
            const Complex* twq = tw + static_cast<std::ptrdiff_t>(q) * (r - 1);
            for (int i = 1; i < r; ++i) {
              buf[i] = p[static_cast<std::ptrdiff_t>(i) * m] * twq[i - 1];
            }
            for (int k = 0; k < r; ++k) {
              Complex acc = buf[0];
              int idx = 0;
              for (int i = 1; i < r; ++i) {
                idx += k;
                if (idx >= r) idx -= r;
                acc += root[idx] * buf[i];
              }
              p[static_cast<std::ptrdiff_t>(k) * m] = acc;
            }
          }
        }
        break;
      }
    }
  }
}

void FftPlan::forward(std::span<Complex> data) const {
  AGCM_ASSERT(static_cast<int>(data.size()) == n_);
  apply_permutation(data.data());
  run_stages<false, false>(data.data());
}

void FftPlan::inverse(std::span<Complex> data) const {
  AGCM_ASSERT(static_cast<int>(data.size()) == n_);
  apply_permutation(data.data());
  run_stages<true, false>(data.data());
  const double scale = 1.0 / n_;
  for (Complex& c : data) c *= scale;
}

void FftPlan::forward_simd(std::span<Complex> data) const {
  AGCM_ASSERT(static_cast<int>(data.size()) == n_);
  apply_permutation(data.data());
  run_stages<false, true>(data.data());
}

void FftPlan::inverse_simd(std::span<Complex> data) const {
  AGCM_ASSERT(static_cast<int>(data.size()) == n_);
  apply_permutation(data.data());
  run_stages<true, true>(data.data());
  const double scale = 1.0 / n_;
  for (Complex& c : data) c *= scale;
}

std::vector<Complex> FftPlan::forward_real(
    std::span<const double> line) const {
  std::vector<Complex> spectrum(static_cast<std::size_t>(n_));
  forward_real(line, spectrum);
  return spectrum;
}

void FftPlan::forward_real(std::span<const double> line,
                           std::span<Complex> spectrum) const {
  AGCM_ASSERT(static_cast<int>(line.size()) == n_);
  AGCM_ASSERT(static_cast<int>(spectrum.size()) == n_);
  for (int i = 0; i < n_; ++i) {
    spectrum[static_cast<std::size_t>(i)] = {line[static_cast<std::size_t>(i)],
                                             0.0};
  }
  forward(spectrum);
}

void FftPlan::inverse_to_real(std::span<Complex> spectrum,
                              std::span<double> line) const {
  AGCM_ASSERT(static_cast<int>(spectrum.size()) == n_);
  AGCM_ASSERT(static_cast<int>(line.size()) == n_);
  inverse(spectrum);
  for (int i = 0; i < n_; ++i) {
    line[static_cast<std::size_t>(i)] =
        spectrum[static_cast<std::size_t>(i)].real();
  }
}

void FftPlan::forward_real_pair(std::span<const double> x,
                                std::span<const double> y,
                                std::span<Complex> sx,
                                std::span<Complex> sy) const {
  AGCM_ASSERT(static_cast<int>(x.size()) == n_ &&
              static_cast<int>(y.size()) == n_);
  AGCM_ASSERT(static_cast<int>(sx.size()) == n_ &&
              static_cast<int>(sy.size()) == n_);
  // Pack z = x + i y directly into sx and transform in place.
  for (int i = 0; i < n_; ++i) {
    sx[static_cast<std::size_t>(i)] = {x[static_cast<std::size_t>(i)],
                                       y[static_cast<std::size_t>(i)]};
  }
  forward(sx);
  // Split by conjugate symmetry:
  //   X[k] = (Z[k] + conj(Z[n-k])) / 2, Y[k] = -i (Z[k] - conj(Z[n-k])) / 2.
  // Indices k and n-k are processed together so the split can overwrite the
  // packed transform it reads from.
  const Complex z0 = sx[0];
  sx[0] = {z0.real(), 0.0};
  sy[0] = {z0.imag(), 0.0};
  for (int k = 1; n_ - k >= k; ++k) {
    const auto uk = static_cast<std::size_t>(k);
    const auto unk = static_cast<std::size_t>(n_ - k);
    const Complex zk = sx[uk];
    const Complex znk = sx[unk];
    sx[uk] = 0.5 * (zk + std::conj(znk));
    sx[unk] = 0.5 * (znk + std::conj(zk));
    sy[uk] = Complex{0.0, -0.5} * (zk - std::conj(znk));
    sy[unk] = Complex{0.0, -0.5} * (znk - std::conj(zk));
  }
}

void FftPlan::inverse_to_real_pair(std::span<const Complex> sx,
                                   std::span<const Complex> sy,
                                   std::span<double> x,
                                   std::span<double> y) const {
  AGCM_ASSERT(static_cast<int>(sx.size()) == n_ &&
              static_cast<int>(sy.size()) == n_);
  AGCM_ASSERT(static_cast<int>(x.size()) == n_ &&
              static_cast<int>(y.size()) == n_);
  // Merge z = sx + i sy into a workspace buffer (allocation-free once the
  // thread's buffer has grown to n), then one inverse recovers both lines.
  std::span<Complex> z =
      FftWorkspace::local().complex_buffer(static_cast<std::size_t>(n_));
  for (int k = 0; k < n_; ++k) {
    const auto uk = static_cast<std::size_t>(k);
    z[uk] = sx[uk] + mul_i(sy[uk]);
  }
  inverse(z);
  for (int i = 0; i < n_; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    x[ui] = z[ui].real();
    y[ui] = z[ui].imag();
  }
}

double FftPlan::flops() const {
  const double n = n_;
  return 5.0 * n * std::log2(std::max(2.0, n));
}

}  // namespace agcm::fft
