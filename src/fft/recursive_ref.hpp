// The ORIGINAL (seed) recursive mixed-radix FFT, preserved verbatim as a
// performance and correctness baseline.
//
// This is the implementation the iterative engine in fft/fft.hpp replaced:
// a recursive Cooley-Tukey decimation in time that heap-allocates scratch
// on every transform, re-scans the factor list at each recursion level, and
// resolves twiddles through `(r*k) % n * root_step % n` modulo arithmetic
// per butterfly. It is kept (not deleted) so that
//   * bench/bench_fft_kernel.cpp can report the new engine's host-time
//     speedup against the exact seed baseline, release after release, and
//   * tests can cross-check the two engines against each other on top of
//     the O(n^2) reference DFT.
// Do not use it on hot paths.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace agcm::fft {

using Complex = std::complex<double>;

/// Seed-era recursive plan; same public surface as the seed FftPlan.
class RecursiveFftPlan {
 public:
  explicit RecursiveFftPlan(int n);

  int size() const { return n_; }

  void forward(std::span<Complex> data) const;
  void inverse(std::span<Complex> data) const;

  std::vector<Complex> forward_real(std::span<const double> line) const;
  void inverse_to_real(std::span<Complex> spectrum,
                       std::span<double> line) const;

  void forward_real_pair(std::span<const double> x, std::span<const double> y,
                         std::span<Complex> sx, std::span<Complex> sy) const;
  void inverse_to_real_pair(std::span<const Complex> sx,
                            std::span<const Complex> sy, std::span<double> x,
                            std::span<double> y) const;

 private:
  void transform(std::span<Complex> data, bool inverse) const;
  void recurse(Complex* data, int n, int stride, Complex* scratch,
               bool inverse) const;

  int n_;
  std::vector<int> factors_;
  std::vector<Complex> twiddle_;
};

}  // namespace agcm::fft
