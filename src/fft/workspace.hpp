// Per-rank FFT workspace: plan cache + reusable scratch buffers.
//
// `local()` resolves through the executing rank's util::ExecSlot (the
// explicit per-rank handle both simnet backends install around rank code —
// see util/exec_local.hpp), so every virtual rank gets its own plans and
// buffers even when many rank fibers share one worker thread: no locking,
// no false sharing, no cross-rank reuse after a fiber migrates, and — after
// the first call at a given length — no heap allocation on any filter or
// transform path (the acceptance criterion the allocation-counting test in
// tests/test_fft_alloc.cpp enforces). Callers off the virtual machine
// (tests, tools, benches driving transforms directly) fall back to a plain
// thread_local instance.
//
// Lifetime rules (see docs/fft.md):
//   * `local()` lives as long as its rank's run (or its thread, for the
//     off-machine fallback); plan references returned by `plan(n)` remain
//     valid for that lifetime (plans are never evicted).
//   * At most ONE `complex_buffer()` borrow may be live at a time per
//     rank. FftPlan transforms never borrow, so a caller may hold the
//     buffer across forward/inverse calls; helpers that borrow internally
//     (FftPlan::inverse_to_real_pair, the serial filter kernels) must not
//     be called while the caller holds a borrow.
//   * `index_buffer()` is an independent borrow with the same single-borrow
//     rule; the batched line filter holds one of each simultaneously.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fft/fft.hpp"
#include "util/exec_local.hpp"

namespace agcm::fft {

class FftWorkspace {
 public:
  /// The executing virtual rank's workspace (via the installed ExecSlot),
  /// or a thread_local fallback for callers outside any SPMD run.
  static FftWorkspace& local();

  FftWorkspace(const FftWorkspace&) = delete;
  FftWorkspace& operator=(const FftWorkspace&) = delete;

  /// Cached plan for length n. A per-rank miss resolves through the
  /// process-wide fft::shared_plan cache (one immutable plan per length,
  /// shared across ranks and concurrent Machines) and memoizes the handle,
  /// so warm calls never lock. Plan construction is deterministic, so
  /// cached, shared and fresh plans produce bit-identical transforms —
  /// tested in tests/test_fft.cpp.
  const FftPlan& plan(int n);

  /// Reusable complex scratch of at least `count` elements. Grows (and
  /// allocates) only when `count` exceeds the high-water mark; contents are
  /// unspecified on entry.
  std::span<Complex> complex_buffer(std::size_t count);

  /// Reusable int scratch (pairing/index tables), same growth contract.
  std::span<int> index_buffer(std::size_t count);

  std::size_t plan_count() const { return plans_.size(); }
  std::size_t complex_capacity() const { return complex_.size(); }

  /// Drops all cached plans and buffers (tests only — invalidates every
  /// outstanding plan reference and borrow).
  void reset();

 private:
  friend class agcm::util::ExecSlot;  // slot-local construction in local()
  FftWorkspace() = default;

  struct Entry {
    int n;
    std::shared_ptr<const FftPlan> plan;  ///< usually the process-wide plan
  };
  std::vector<Entry> plans_;  ///< few distinct lengths; linear scan
  AlignedComplexVec complex_;  ///< 64-byte aligned for the SIMD stage path
  std::vector<int> index_;
};

}  // namespace agcm::fft
