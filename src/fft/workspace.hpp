// Thread-local FFT workspace: plan cache + reusable scratch buffers.
//
// The virtual multicomputer runs one host thread per virtual rank, so a
// thread_local workspace is exactly a *per-rank* workspace: every rank gets
// its own plans and buffers, no locking, no false sharing, and — after the
// first call at a given length — no heap allocation on any filter or
// transform path (the acceptance criterion the allocation-counting test in
// tests/test_fft_alloc.cpp enforces).
//
// Lifetime rules (see docs/fft.md):
//   * `local()` lives as long as its thread; plan references returned by
//     `plan(n)` remain valid for the thread's lifetime (plans are never
//     evicted).
//   * At most ONE `complex_buffer()` borrow may be live at a time per
//     thread. FftPlan transforms never borrow, so a caller may hold the
//     buffer across forward/inverse calls; helpers that borrow internally
//     (FftPlan::inverse_to_real_pair, the serial filter kernels) must not
//     be called while the caller holds a borrow.
//   * `index_buffer()` is an independent borrow with the same single-borrow
//     rule; the batched line filter holds one of each simultaneously.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fft/fft.hpp"

namespace agcm::fft {

class FftWorkspace {
 public:
  /// The calling thread's (= the virtual rank's) workspace.
  static FftWorkspace& local();

  FftWorkspace(const FftWorkspace&) = delete;
  FftWorkspace& operator=(const FftWorkspace&) = delete;

  /// Cached plan for length n; built on first request, identical to a
  /// freshly constructed FftPlan(n) thereafter (plan construction is
  /// deterministic, so cached and fresh plans produce bit-identical
  /// transforms — tested in tests/test_fft.cpp).
  const FftPlan& plan(int n);

  /// Reusable complex scratch of at least `count` elements. Grows (and
  /// allocates) only when `count` exceeds the high-water mark; contents are
  /// unspecified on entry.
  std::span<Complex> complex_buffer(std::size_t count);

  /// Reusable int scratch (pairing/index tables), same growth contract.
  std::span<int> index_buffer(std::size_t count);

  std::size_t plan_count() const { return plans_.size(); }
  std::size_t complex_capacity() const { return complex_.size(); }

  /// Drops all cached plans and buffers (tests only — invalidates every
  /// outstanding plan reference and borrow).
  void reset();

 private:
  FftWorkspace() = default;

  struct Entry {
    int n;
    std::unique_ptr<FftPlan> plan;
  };
  std::vector<Entry> plans_;  ///< few distinct lengths; linear scan
  std::vector<Complex> complex_;
  std::vector<int> index_;
};

}  // namespace agcm::fft
