#include "fft/plan_cache.hpp"

#include <map>
#include <mutex>

#include "util/shared_cache.hpp"

namespace agcm::fft {

namespace {

struct PlanCache {
  std::mutex mutex;
  std::map<int, std::shared_ptr<const FftPlan>> plans;
  util::SharedCacheStats stats;

  static PlanCache& instance() {
    static PlanCache cache;
    return cache;
  }

 private:
  PlanCache() {
    util::SharedCaches::register_cache(
        "fft.plans", [] { clear_plan_cache(); },
        [] {
          PlanCache& c = instance();
          std::lock_guard<std::mutex> lock(c.mutex);
          return c.stats;
        });
  }
};

}  // namespace

std::shared_ptr<const FftPlan> shared_plan(int n) {
  if (!util::SharedCaches::enabled())
    return std::make_shared<const FftPlan>(n);
  PlanCache& cache = PlanCache::instance();
  std::lock_guard<std::mutex> lock(cache.mutex);
  auto it = cache.plans.find(n);
  if (it != cache.plans.end()) {
    ++cache.stats.hits;
    return it->second;
  }
  ++cache.stats.misses;
  auto plan = std::make_shared<const FftPlan>(n);
  cache.plans.emplace(n, plan);
  return plan;
}

void clear_plan_cache() {
  PlanCache& cache = PlanCache::instance();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.plans.clear();
}

}  // namespace agcm::fft
