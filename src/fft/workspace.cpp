#include "fft/workspace.hpp"

#include "fft/plan_cache.hpp"

namespace agcm::fft {

FftWorkspace& FftWorkspace::local() {
  // Per-rank when a simnet backend installed the rank's slot (the slot
  // pins the workspace to the virtual rank across fiber migration);
  // thread_local otherwise (tests/tools driving transforms off-machine).
  if (util::ExecSlot* slot = util::ExecSlot::current())
    return slot->get<FftWorkspace>();
  thread_local FftWorkspace workspace;
  return workspace;
}

const FftPlan& FftWorkspace::plan(int n) {
  for (const Entry& e : plans_) {
    if (e.n == n) return *e.plan;
  }
  // Miss: resolve through the process-wide plan cache (one immutable plan
  // per length, shared across ranks and Machines) and memoize the
  // shared_ptr locally, so every later call stays a lock-free linear scan.
  plans_.push_back(Entry{n, shared_plan(n)});
  return *plans_.back().plan;
}

std::span<Complex> FftWorkspace::complex_buffer(std::size_t count) {
  if (complex_.size() < count) complex_.resize(count);
  return {complex_.data(), count};
}

std::span<int> FftWorkspace::index_buffer(std::size_t count) {
  if (index_.size() < count) index_.resize(count);
  return {index_.data(), count};
}

void FftWorkspace::reset() {
  plans_.clear();
  plans_.shrink_to_fit();
  complex_.clear();
  complex_.shrink_to_fit();
  index_.clear();
  index_.shrink_to_fit();
}

}  // namespace agcm::fft
