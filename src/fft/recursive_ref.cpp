// Seed recursive FFT, preserved as a baseline — see recursive_ref.hpp.
// This code is intentionally NOT optimised; it must keep the seed's exact
// cost profile (per-call heap scratch, factor re-scan, modulo twiddle
// lookups) so the bench's speedup numbers stay honest.
#include "fft/recursive_ref.hpp"

#include <cmath>
#include <numbers>

#include "fft/fft.hpp"  // prime_factors
#include "util/error.hpp"

namespace agcm::fft {

RecursiveFftPlan::RecursiveFftPlan(int n)
    : n_(n), factors_(prime_factors(n)) {
  check_config(n >= 1, "FFT length must be >= 1");
  twiddle_.resize(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j) {
    const double angle = -2.0 * std::numbers::pi * j / n_;
    twiddle_[static_cast<std::size_t>(j)] = {std::cos(angle), std::sin(angle)};
  }
}

void RecursiveFftPlan::forward(std::span<Complex> data) const {
  AGCM_ASSERT(static_cast<int>(data.size()) == n_);
  transform(data, /*inverse=*/false);
}

void RecursiveFftPlan::inverse(std::span<Complex> data) const {
  AGCM_ASSERT(static_cast<int>(data.size()) == n_);
  transform(data, /*inverse=*/true);
  const double scale = 1.0 / n_;
  for (Complex& c : data) c *= scale;
}

void RecursiveFftPlan::transform(std::span<Complex> data, bool inverse) const {
  std::vector<Complex> scratch(static_cast<std::size_t>(n_));
  recurse(data.data(), n_, 1, scratch.data(), inverse);
}

void RecursiveFftPlan::recurse(Complex* data, int n, int stride,
                               Complex* scratch, bool inverse) const {
  if (n == 1) return;
  // Smallest prime factor of n.
  int p = n;
  for (int f : factors_) {
    if (n % f == 0) {
      p = f;
      break;
    }
  }
  const int m = n / p;

  // Sub-transforms over the p decimated sequences.
  for (int r = 0; r < p; ++r) {
    recurse(data + static_cast<std::ptrdiff_t>(r) * stride, m, stride * p,
            scratch, inverse);
  }

  // Combine: X[k1*m + k2] = sum_r w_n^{r*(k1*m+k2)} F_r[k2],
  // where F_r[q] lives at data[(r + q*p) * stride].
  const int root_step = n_ / n;  // w_n = w_{n_}^{root_step}
  for (int k2 = 0; k2 < m; ++k2) {
    for (int k1 = 0; k1 < p; ++k1) {
      const int k = k1 * m + k2;
      Complex acc{0.0, 0.0};
      for (int r = 0; r < p; ++r) {
        const long long e =
            (static_cast<long long>(r) * k) % n * root_step;
        Complex w = twiddle_[static_cast<std::size_t>(e % n_)];
        if (inverse) w = std::conj(w);
        acc += w * data[static_cast<std::ptrdiff_t>(r + k2 * p) * stride];
      }
      scratch[k] = acc;
    }
  }
  for (int k = 0; k < n; ++k)
    data[static_cast<std::ptrdiff_t>(k) * stride] = scratch[k];
}

std::vector<Complex> RecursiveFftPlan::forward_real(
    std::span<const double> line) const {
  AGCM_ASSERT(static_cast<int>(line.size()) == n_);
  std::vector<Complex> spectrum(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i)
    spectrum[static_cast<std::size_t>(i)] = {line[static_cast<std::size_t>(i)], 0.0};
  forward(spectrum);
  return spectrum;
}

void RecursiveFftPlan::inverse_to_real(std::span<Complex> spectrum,
                                       std::span<double> line) const {
  AGCM_ASSERT(static_cast<int>(spectrum.size()) == n_);
  AGCM_ASSERT(static_cast<int>(line.size()) == n_);
  inverse(spectrum);
  for (int i = 0; i < n_; ++i)
    line[static_cast<std::size_t>(i)] = spectrum[static_cast<std::size_t>(i)].real();
}

void RecursiveFftPlan::forward_real_pair(std::span<const double> x,
                                         std::span<const double> y,
                                         std::span<Complex> sx,
                                         std::span<Complex> sy) const {
  AGCM_ASSERT(static_cast<int>(x.size()) == n_ &&
              static_cast<int>(y.size()) == n_);
  AGCM_ASSERT(static_cast<int>(sx.size()) == n_ &&
              static_cast<int>(sy.size()) == n_);
  std::vector<Complex> z(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i)
    z[static_cast<std::size_t>(i)] = {x[static_cast<std::size_t>(i)],
                                      y[static_cast<std::size_t>(i)]};
  forward(z);
  // Split: X[k] = (Z[k] + conj(Z[n-k])) / 2, Y[k] = -i (Z[k] - conj(Z[n-k])) / 2.
  for (int k = 0; k < n_; ++k) {
    const Complex zk = z[static_cast<std::size_t>(k)];
    const Complex zc =
        std::conj(z[static_cast<std::size_t>((n_ - k) % n_)]);
    sx[static_cast<std::size_t>(k)] = 0.5 * (zk + zc);
    sy[static_cast<std::size_t>(k)] = Complex{0.0, -0.5} * (zk - zc);
  }
}

void RecursiveFftPlan::inverse_to_real_pair(std::span<const Complex> sx,
                                            std::span<const Complex> sy,
                                            std::span<double> x,
                                            std::span<double> y) const {
  AGCM_ASSERT(static_cast<int>(sx.size()) == n_ &&
              static_cast<int>(sy.size()) == n_);
  AGCM_ASSERT(static_cast<int>(x.size()) == n_ &&
              static_cast<int>(y.size()) == n_);
  std::vector<Complex> z(static_cast<std::size_t>(n_));
  for (int k = 0; k < n_; ++k)
    z[static_cast<std::size_t>(k)] =
        sx[static_cast<std::size_t>(k)] +
        Complex{0.0, 1.0} * sy[static_cast<std::size_t>(k)];
  inverse(z);
  for (int i = 0; i < n_; ++i) {
    x[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)].real();
    y[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)].imag();
  }
}

}  // namespace agcm::fft
