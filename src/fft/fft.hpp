// Iterative mixed-radix complex FFT (Cooley-Tukey, decimation in time).
//
// The paper replaces the AGCM's convolution filter with FFTs performed
// locally after a data transpose, using "highly efficient (sometimes vendor
// provided) FFT library codes on whole latitudinal data lines". This module
// is the substitute for those vendor libraries, and since the FFT *is* the
// hot kernel of this reproduction it is built like one:
//
//   * the constructor compiles a *stage plan* — factor sequence, per-stage
//     twiddle tables (forward and inverse), and the mixed-radix
//     digit-reversal permutation flattened into a swap program — so
//     `forward`/`inverse` execute straight-line table-driven stages with no
//     per-call factorisation, no modulo arithmetic, and no heap traffic;
//   * radix-2/3/4/5 butterflies are hand-unrolled (144 = 4*4*3*3 runs
//     entirely on the unrolled paths); any other prime factor takes a
//     generic-radix butterfly that is still table-driven;
//   * real lines go through the two-for-one pack (z = x + i y) with an
//     in-place split/merge, the trick the era's vendor real-FFT entry
//     points used.
//
// Layering note: per-call scratch for the few helpers that need it lives in
// the thread-local FftWorkspace (fft/workspace.hpp), keyed per virtual
// rank; FftPlan itself performs no allocation after construction. See
// docs/fft.md for the plan layout and the workspace lifetime rules.
//
// Virtual-clock accounting (`flops()`) is frozen to the paper's 5 n log2 n
// formula regardless of how the host kernel is implemented; only host
// wall-time changes when this file gets faster.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "util/aligned.hpp"

namespace agcm::fft {

using Complex = std::complex<double>;

/// Twiddle/scratch storage aligned to a cache line so the SIMD stage path
/// can use aligned loads and no table ever straddles a line boundary.
using AlignedComplexVec =
    std::vector<Complex, util::AlignedAllocator<Complex, 64>>;

/// Precomputed plan for a fixed transform length.
///
/// Thread-safety: all transform entry points are const and allocation-free.
/// Plans whose length contains a prime factor > 16 share one internal
/// generic-radix scratch buffer per plan, so concurrent transforms on the
/// *same* plan instance are only safe for lengths whose prime factors are
/// all <= 16 (every AGCM grid length qualifies: 72, 144, 288, 360, 500).
/// Per-thread plans — what FftWorkspace hands out — are always safe.
class FftPlan {
 public:
  explicit FftPlan(int n);

  int size() const { return n_; }

  /// In-place forward DFT: X[k] = sum_j x[j] exp(-2*pi*i*j*k/n).
  void forward(std::span<Complex> data) const;

  /// In-place inverse DFT including the 1/n normalisation.
  void inverse(std::span<Complex> data) const;

  /// forward/inverse with the radix-2 and radix-4 butterfly passes routed
  /// through the SIMD dispatch table (kernels/simd/dispatch.hpp); radix
  /// 3/5/generic stages stay scalar. The butterflies are per-point (no
  /// reassociation), but the family ships under the ulp contract, so these
  /// are OPT-IN entry points: the production filter path keeps forward/
  /// inverse — its spectra feed the frozen virtual-time artefacts
  /// (docs/kernels.md, frozen-artefact rule). Under a forced-scalar tier
  /// they are bitwise identical to forward/inverse.
  void forward_simd(std::span<Complex> data) const;
  void inverse_simd(std::span<Complex> data) const;

  /// Forward transform of a real line; returns the full complex spectrum
  /// (length n, conjugate-symmetric). Allocates its result — prefer the
  /// span overload (or the filter layer's batched path) on hot paths.
  std::vector<Complex> forward_real(std::span<const double> line) const;

  /// Allocation-free overload: writes the full spectrum into `spectrum`
  /// (length n).
  void forward_real(std::span<const double> line,
                    std::span<Complex> spectrum) const;

  /// Inverse of forward_real: takes a conjugate-symmetric spectrum and
  /// writes the real signal into `line` (imaginary residue discarded).
  /// Destroys `spectrum`. Allocation-free.
  void inverse_to_real(std::span<Complex> spectrum,
                       std::span<double> line) const;

  /// Two-for-one real transform: both real lines in a *single* complex FFT
  /// (pack z = x + i y, then split by conjugate symmetry). Writes the two
  /// full spectra into `sx` and `sy` (length n each). The pack and the
  /// split run in place inside `sx`, so the call is allocation-free.
  void forward_real_pair(std::span<const double> x, std::span<const double> y,
                         std::span<Complex> sx, std::span<Complex> sy) const;

  /// Inverse of forward_real_pair: one complex inverse transform recovers
  /// both real lines. Needs one length-n complex merge buffer, borrowed
  /// from the thread-local FftWorkspace (allocation-free after warm-up).
  void inverse_to_real_pair(std::span<const Complex> sx,
                            std::span<const Complex> sy, std::span<double> x,
                            std::span<double> y) const;

  /// Approximate flop count of one complex transform (for the virtual
  /// clock): 5 n log2 n, the standard accounting. FROZEN — the paper's
  /// Tables 8-11 figures depend on it; host-side optimisation must never
  /// change this formula.
  double flops() const;

  /// Number of butterfly stages in the compiled plan (diagnostics/tests).
  int stage_count() const { return static_cast<int>(stages_.size()); }

  /// The radix sequence the plan executes, smallest sub-transforms first
  /// (diagnostics/tests).
  std::vector<int> stage_radices() const;

 private:
  /// One butterfly pass. Sub-transforms of length `m` are combined into
  /// blocks of length `radix * m`; `tw_off` indexes the per-stage twiddle
  /// table (layout tw[q * (radix-1) + (i-1)] = w_L^{q i}, L = radix * m);
  /// `root_off` indexes the generic-radix root table (w_radix^j), unused by
  /// the unrolled radices.
  struct Stage {
    int radix;
    int m;
    std::size_t tw_off;
    std::size_t root_off;
    /// Radix-4 only: offset into tw4_fwd_/tw4_inv_, the split per-leg
    /// twiddle layout the SIMD butterfly consumes (tw1[0..m), tw2[0..m),
    /// tw3[0..m) contiguous — a vector lane loads consecutive q without
    /// the stride-3 gather the interleaved tw layout would force).
    std::size_t tw4_off;
  };

  template <bool kInverse, bool kSimd>
  void run_stages(Complex* a) const;
  void apply_permutation(Complex* a) const;

  int n_;
  std::vector<Stage> stages_;       ///< execution order (m == 1 first)
  AlignedComplexVec tw_fwd_;        ///< per-stage twiddles, forward
  AlignedComplexVec tw_inv_;        ///< per-stage twiddles, conjugated
  AlignedComplexVec tw4_fwd_;       ///< radix-4 split per-leg twiddles
  AlignedComplexVec tw4_inv_;       ///< ... conjugated
  AlignedComplexVec root_fwd_;      ///< generic-radix roots, forward
  AlignedComplexVec root_inv_;      ///< generic-radix roots, conjugated
  std::vector<int> perm_swaps_;     ///< digit-reversal as (a,b) swap pairs
  /// Gather buffer for generic-radix butterflies with radix > 16 (sized
  /// once at construction; empty for smooth lengths). See the class
  /// comment for the concurrency caveat.
  mutable AlignedComplexVec generic_scratch_;
};

/// Prime factorisation helper (ascending, with multiplicity).
std::vector<int> prime_factors(int n);

}  // namespace agcm::fft
