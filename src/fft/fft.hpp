// Mixed-radix complex FFT (Cooley-Tukey, decimation in time).
//
// The paper replaces the AGCM's convolution filter with FFTs performed
// locally after a data transpose, using "highly efficient (sometimes vendor
// provided) FFT library codes on whole latitudinal data lines". We have no
// vendor library, so this module is the substitute: a from-scratch
// mixed-radix FFT handling any length whose prime factors are arbitrary
// (small factors 2/3/5 take the fast path; other primes fall back to a
// direct DFT butterfly, still correct). The grid length 144 = 2^4 * 3^2 is
// fully covered by the fast path.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace agcm::fft {

using Complex = std::complex<double>;

/// Precomputed plan for a fixed transform length.
class FftPlan {
 public:
  explicit FftPlan(int n);

  int size() const { return n_; }

  /// In-place forward DFT: X[k] = sum_j x[j] exp(-2*pi*i*j*k/n).
  void forward(std::span<Complex> data) const;

  /// In-place inverse DFT including the 1/n normalisation.
  void inverse(std::span<Complex> data) const;

  /// Forward transform of a real line; returns the full complex spectrum
  /// (length n, conjugate-symmetric).
  std::vector<Complex> forward_real(std::span<const double> line) const;

  /// Inverse of forward_real: takes a conjugate-symmetric spectrum and
  /// writes the real signal into `line` (imaginary residue discarded).
  void inverse_to_real(std::span<Complex> spectrum,
                       std::span<double> line) const;

  /// Two-for-one real transform: both real lines in a *single* complex FFT
  /// (pack z = x + i y, then split by conjugate symmetry) — the trick the
  /// era's vendor FFT libraries used for real data. Writes the two full
  /// spectra into `sx` and `sy` (length n each).
  void forward_real_pair(std::span<const double> x, std::span<const double> y,
                         std::span<Complex> sx, std::span<Complex> sy) const;

  /// Inverse of forward_real_pair: one complex inverse transform recovers
  /// both real lines.
  void inverse_to_real_pair(std::span<const Complex> sx,
                            std::span<const Complex> sy, std::span<double> x,
                            std::span<double> y) const;

  /// Approximate flop count of one complex transform (for the virtual
  /// clock): 5 n log2 n, the standard accounting.
  double flops() const;

 private:
  void transform(std::span<Complex> data, bool inverse) const;
  /// Recursive mixed-radix step over a strided view.
  void recurse(Complex* data, int n, int stride, Complex* scratch,
               bool inverse) const;

  int n_;
  std::vector<int> factors_;          ///< prime factorisation of n, ascending
  std::vector<Complex> twiddle_;      ///< exp(-2 pi i j / n), j in [0, n)
};

/// Prime factorisation helper (ascending, with multiplicity).
std::vector<int> prime_factors(int n);

}  // namespace agcm::fft
