#include "fft/dft_ref.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace agcm::fft {

std::vector<std::complex<double>> dft(
    std::span<const std::complex<double>> x) {
  const auto n = static_cast<int>(x.size());
  std::vector<std::complex<double>> out(x.size());
  for (int k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (int j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi * j * k / n;
      acc += x[static_cast<std::size_t>(j)] *
             std::complex<double>{std::cos(angle), std::sin(angle)};
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
  return out;
}

std::vector<std::complex<double>> idft(
    std::span<const std::complex<double>> x) {
  const auto n = static_cast<int>(x.size());
  std::vector<std::complex<double>> out(x.size());
  for (int k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (int j = 0; j < n; ++j) {
      const double angle = 2.0 * std::numbers::pi * j * k / n;
      acc += x[static_cast<std::size_t>(j)] *
             std::complex<double>{std::cos(angle), std::sin(angle)};
    }
    out[static_cast<std::size_t>(k)] = acc / static_cast<double>(n);
  }
  return out;
}

std::vector<double> circular_convolution(std::span<const double> a,
                                         std::span<const double> b) {
  AGCM_ASSERT(a.size() == b.size());
  const auto n = static_cast<int>(a.size());
  std::vector<double> out(a.size(), 0.0);
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int s = 0; s < n; ++s) {
      const int idx = (i - s) % n;
      acc += a[static_cast<std::size_t>(s)] *
             b[static_cast<std::size_t>((idx + n) % n)];
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

double dft_flops(int n) { return 8.0 * static_cast<double>(n) * n; }

double convolution_flops(int n) { return 2.0 * static_cast<double>(n) * n; }

}  // namespace agcm::fft
