#!/usr/bin/env python3
"""What-if CLI over a trained performance model (agcm-predict-v1).

Predicts the per-step (and per-day) component breakdown of a run
configuration without running it, by evaluating the fitted composition
trees in a PREDICT_MODEL.json (written by bench_predict_model; see
docs/perfmodel.md). The driver formulas and structure operators are a
pure-Python mirror of src/perfmodel/compose.cpp — `--selftest` proves the
mirror agrees with the C++ engine by re-evaluating the model's own holdout
block.

Usage:
    tools/predict.py MODEL.json run.cfg [--set KEY=VALUE ...] [--json]
    tools/predict.py MODEL.json --selftest

`run.cfg` is the ordinary run-spec dialect (configs/*.cfg): nlon/nlat/
nlev, mesh_rows/mesh_cols, machine token (paragon/t3d/sp2/ideal),
filter_algorithm, lb_scheme, ... `--set` overrides individual keys from
the command line, so sweeping a what-if question needs no temp files:

    tools/predict.py PREDICT_MODEL.json configs/small_demo.cfg \\
        --set mesh_cols=8 --set filter_algorithm=convolution-ring

Standard library only, so CI can run it anywhere.
"""
from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any

SCHEMA = "agcm-predict-v1"

# Config machine tokens -> profile names (the machines-table keys), the
# same mapping core::parse_machine_profile applies.
MACHINE_TOKENS = {
    "paragon": "Intel Paragon",
    "t3d": "Cray T3D",
    "sp2": "IBM SP-2",
    "ideal": "ideal",
}

FILTER_BACKENDS = (
    "convolution-ring",
    "convolution-tree",
    "fft-transpose",
    "fft-load-balanced",
    "convolution-partitioned",
    "implicit-zonal",
)

LB_SCHEMES = {
    "none": "none",
    "cyclic": "cyclic",
    "scheme1": "cyclic",
    "sorted-greedy": "sorted-greedy",
    "scheme2": "sorted-greedy",
    "pairwise": "pairwise",
    "scheme3": "pairwise",
}

PHASES = ("filter", "halo", "fd", "physics_compute", "physics_balance")

# Polar-filter structure constants (src/perfmodel/compose.cpp).
STRONG_CUTOFF_DEG = 45.0
WEAK_CUTOFF_DEG = 60.0
STRONG_VARS = 3
WEAK_VARS = 2


# --- run-spec parsing (mirror of core::run_spec_from) -----------------------

def parse_cfg(path: str) -> dict[str, str]:
    values: dict[str, str] = {}
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise ValueError(f"{path}:{lineno}: not 'key = value': {line}")
            key, _, value = line.partition("=")
            values[key.strip()] = value.strip()
    return values


def as_bool(values: dict[str, str], key: str, fallback: bool) -> bool:
    raw = values.get(key)
    if raw is None:
        return fallback
    lower = raw.lower()
    if lower in ("true", "yes", "on", "1"):
        return True
    if lower in ("false", "no", "off", "0"):
        return False
    raise ValueError(f"config key '{key}' is not a boolean: {raw}")


def as_int(values: dict[str, str], key: str, fallback: int | None) -> int:
    raw = values.get(key)
    if raw is None:
        if fallback is None:
            raise ValueError(f"config key '{key}' is required")
        return fallback
    return int(raw)


def point_from_cfg(values: dict[str, str], machines: dict) -> dict:
    """The prediction coordinate of a run spec (core::point_from)."""
    token = values.get("machine", "t3d")
    name = MACHINE_TOKENS.get(token)
    if name is None:
        raise ValueError(f"unknown machine '{token}'")
    scalars = machines.get(name)
    if scalars is None:
        raise ValueError(f"model has no machine table entry for '{name}'")

    backend = values.get("filter_algorithm", "fft-load-balanced")
    if backend not in FILTER_BACKENDS:
        raise ValueError(f"unknown filter_algorithm '{backend}'")

    physics = as_bool(values, "physics", True)
    legacy_lb = as_bool(values, "physics_load_balance", False)
    scheme = LB_SCHEMES.get(
        values.get("lb_scheme", "pairwise" if legacy_lb else "none"))
    if scheme is None:
        raise ValueError(f"unknown lb_scheme '{values.get('lb_scheme')}'")
    lb_enabled = physics and scheme != "none"

    point = {
        "nlon": as_int(values, "nlon", 144),
        "nlat": as_int(values, "nlat", 90),
        "nlev": as_int(values, "nlev", 9),
        "mesh_rows": as_int(values, "mesh_rows", None),
        "mesh_cols": as_int(values, "mesh_cols", None),
        "lb_rounds": as_int(values, "lb_max_iterations", 2)
        if lb_enabled else 0,
        "lb_enabled": lb_enabled,
        "machine": name,
        "filter_backend": backend,
    }
    point.update(scalars)
    return point


# --- driver formulas (mirror of perfmodel::driver_value) --------------------

def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def block_start(n: int, p: int, b: int) -> int:
    return b * (n // p) + min(b, n % p)


def block_size(n: int, p: int, b: int) -> int:
    return n // p + (1 if b < n % p else 0)


def lat_center_deg(j: int, nlat: int) -> float:
    # Same operation order as grid/latlon.cpp so the poleward test agrees.
    dlat = math.pi / nlat
    lat = -0.5 * math.pi + (j + 0.5) * dlat
    return lat * 180.0 / math.pi


def filtered_rows_in(j0: int, nj: int, nlat: int, cutoff_deg: float) -> int:
    return sum(
        1 for j in range(j0, j0 + nj)
        if abs(lat_center_deg(j, nlat)) >= cutoff_deg
    )


def filtered_lines_in(j0: int, nj: int, p: dict) -> float:
    nlat = p["nlat"]
    return p["nlev"] * (
        STRONG_VARS * filtered_rows_in(j0, nj, nlat, STRONG_CUTOFF_DEG)
        + WEAK_VARS * filtered_rows_in(j0, nj, nlat, WEAK_CUTOFF_DEG)
    )


def filtered_lines_row_max(p: dict) -> float:
    nlat, rows = p["nlat"], p["mesh_rows"]
    return max(
        filtered_lines_in(block_start(nlat, rows, r),
                          block_size(nlat, rows, r), p)
        for r in range(rows)
    )


def filtered_lines_balanced(p: dict) -> float:
    total = filtered_lines_in(0, p["nlat"], p)
    return math.ceil(total / (p["mesh_rows"] * p["mesh_cols"]))


def loop_efficiency(n: float, startup: float) -> float:
    return 1.0 if startup <= 0.0 else n / (n + startup)


def driver_value(name: str, p: dict) -> float:
    ni = float(ceil_div(p["nlon"], p["mesh_cols"]))
    nj = float(ceil_div(p["nlat"], p["mesh_rows"]))
    nlev = p["nlev"]
    ranks = p["mesh_rows"] * p["mesh_cols"]
    flops = p["flops_per_sec"]
    bw = p["link_bytes_per_sec"]
    msg_ovh = (p["msg_latency_sec"] + p["send_overhead_sec"]
               + p["recv_overhead_sec"])
    split_rows = p["mesh_rows"] > 1
    split_cols = p["mesh_cols"] > 1
    boundary = ((2.0 * ni if split_rows else 0.0)
                + (2.0 * nj if split_cols else 0.0))

    if name == "unit":
        return 1.0
    if name == "msg_overhead_sec":
        return msg_ovh
    if name == "points_sec":
        return ni * nj * nlev / flops
    if name == "points_startup_sec":
        return ni * nj * nlev / (
            flops * loop_efficiency(ni, p["loop_startup_elems"]))
    if name == "plane_sec":
        return ni * nj / flops
    if name == "mem_points_sec":
        return 8.0 * ni * nj * nlev / p["mem_bytes_per_sec"]
    if name == "physics_mean_sec":
        return float(p["nlon"]) * p["nlat"] * nlev / (ranks * flops)
    if name == "physics_sunlit_max_sec":
        sunlit = min(ni, p["nlon"] / 2.0) / ni
        return ni * nj * nlev * sunlit / flops
    if name == "halo_msgs_sec":
        return ((2.0 if split_rows else 0.0)
                + (2.0 if split_cols else 0.0)) * msg_ovh
    if name == "halo_bytes_sec":
        return 8.0 * nlev * boundary / bw
    if name == "halo_pack_sec":
        return nlev * boundary / flops
    if name == "fft_lines_row_sec":
        return (filtered_lines_row_max(p) * p["nlon"]
                * math.log2(float(p["nlon"])) / flops)
    if name == "lin_lines_row_sec":
        return filtered_lines_row_max(p) * p["nlon"] / flops
    if name == "conv_row_sec":
        return filtered_lines_row_max(p) * p["nlon"] * p["nlon"] / flops
    if name == "conv_seg_row_sec":
        return filtered_lines_row_max(p) * ni * ni / flops
    if name == "seg_bytes_row_sec":
        return 8.0 * filtered_lines_row_max(p) * ni / bw
    if name == "fft_lines_bal_sec":
        return (filtered_lines_balanced(p) * p["nlon"]
                * math.log2(float(p["nlon"])) / flops)
    if name == "lin_lines_bal_sec":
        return filtered_lines_balanced(p) * p["nlon"] / flops
    if name == "line_bytes_bal_sec":
        return 8.0 * filtered_lines_balanced(p) * p["nlon"] / bw
    if name == "pair_bytes_sec":
        return 8.0 * ni * nj * nlev / bw
    raise ValueError(f"unknown driver '{name}'")


# --- composition-tree evaluation (mirror of perfmodel::evaluate) ------------

def basis(a: float, b: int, x: float) -> float:
    phi = 1.0
    if a != 0.0:
        phi *= x ** a
    if b != 0:
        lg = math.log2(x) if x > 1.0 else 0.0
        phi *= lg ** b
    return phi


def extent_value(name: str, p: dict) -> float:
    if name == "ranks":
        return float(p["mesh_rows"] * p["mesh_cols"])
    if name in ("mesh_rows", "mesh_cols", "lb_rounds"):
        return float(p[name])
    raise ValueError(f"unknown extent '{name}'")


def evaluate(node: dict, p: dict) -> float:
    op = node["op"]
    if op == "leaf":
        return node["weight"] * basis(
            node["exponent_a"], node["log_power_b"],
            driver_value(node["driver"], p))
    if op == "sequence":
        return sum(evaluate(c, p) for c in node["children"])
    if op == "concurrent":
        return max((evaluate(c, p) for c in node["children"]), default=0.0)
    if op in ("ring", "tree", "pairwise"):
        e = extent_value(node["extent"], p)
        if op == "ring":
            hops = max(e - 1.0, 0.0)
        elif op == "tree":
            hops = math.ceil(math.log2(e)) if e > 1.0 else 0.0
        else:
            hops = max(e, 0.0)
        return hops * sum(evaluate(c, p) for c in node["children"])
    if op == "transpose":
        e = extent_value(node["extent"], p)
        if e <= 1.0:
            return 0.0
        total = 0.0
        for i, child in enumerate(node["children"]):
            mult = (e - 1.0) if i == 0 else (e - 1.0) / e
            total += mult * evaluate(child, p)
        return total
    raise ValueError(f"unknown composition op '{op}'")


def find_phase(model: dict, phase: str, selector: str) -> dict | None:
    for entry in model["phases"]:
        if entry["phase"] == phase and entry["selector"] == selector:
            return entry
    return None


def evaluate_phase(model: dict, phase: str, selector: str, p: dict) -> float:
    entry = find_phase(model, phase, selector)
    if entry is None:
        raise ValueError(
            f"model has no predictor for phase '{phase}' "
            f"selector '{selector}'")
    return max(entry["c0"] + evaluate(entry["tree"], p), 0.0)


def predict(model: dict, p: dict, filter_enabled: bool,
            physics_enabled: bool) -> dict[str, float]:
    ranks = p["mesh_rows"] * p["mesh_cols"]
    out = dict.fromkeys(PHASES, 0.0)
    out["fd"] = evaluate_phase(model, "fd", "", p)
    if ranks > 1:
        out["halo"] = evaluate_phase(model, "halo", "", p)
    if filter_enabled:
        out["filter"] = evaluate_phase(
            model, "filter", p["filter_backend"], p)
    if physics_enabled:
        selector = "lb-on" if p["lb_enabled"] else "lb-off"
        out["physics_compute"] = evaluate_phase(
            model, "physics_compute", selector, p)
        if p["lb_enabled"] and ranks > 1:
            out["physics_balance"] = evaluate_phase(
                model, "physics_balance", "lb-on", p)
    return out


# --- entry points -----------------------------------------------------------

def load_model(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: schema is {doc.get('schema')!r}, "
                         f"want {SCHEMA!r}")
    for key in ("machines", "phases"):
        if key not in doc:
            raise ValueError(f"{path}: missing '{key}'")
    return doc


def selftest(doc: dict, rtol: float = 1e-9) -> int:
    """Re-evaluates the model's holdout block with the Python mirror and
    compares against the predictions the C++ engine stored there."""
    holdout = doc.get("holdout")
    if not holdout:
        print("selftest: model has no holdout block", file=sys.stderr)
        return 1
    keys = [f"{phase}_per_step_sec" for phase in PHASES]
    keys.append("total_per_step_sec")
    failures = 0
    for entry in holdout:
        mine = predict(doc, entry["point"], entry["filter_enabled"],
                       entry["physics_enabled"])
        mine["total"] = sum(mine[phase] for phase in PHASES)
        for key in keys:
            stored = entry["predicted"][key]
            local = mine[key.removesuffix("_per_step_sec")
                         if key != "total_per_step_sec" else "total"]
            scale = max(abs(stored), abs(local), 1e-300)
            if abs(stored - local) / scale > rtol:
                print(f"FAIL {entry['name']}: {key}: stored {stored!r} "
                      f"!= mirrored {local!r}", file=sys.stderr)
                failures += 1
    if failures:
        return 1
    print(f"ok   {len(holdout)} holdout prediction(s) re-evaluated "
          f"within rtol {rtol:g}")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("model", help="PREDICT_MODEL.json")
    parser.add_argument("config", nargs="?", help="run spec (.cfg)")
    parser.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="override a config key (repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="print the breakdown as one JSON object")
    parser.add_argument("--selftest", action="store_true",
                        help="re-evaluate the model's holdout block with "
                             "the Python mirror and compare")
    args = parser.parse_args(argv[1:])

    try:
        doc = load_model(args.model)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1

    if args.selftest:
        if args.config is not None or args.set:
            parser.error("--selftest takes no run spec")
        return selftest(doc)
    if args.config is None:
        parser.error("a run spec (.cfg) is required unless --selftest")

    try:
        values = parse_cfg(args.config)
        for clause in args.set:
            if "=" not in clause:
                parser.error(f"--set needs KEY=VALUE, got {clause!r}")
            key, _, value = clause.partition("=")
            values[key.strip()] = value.strip()
        point = point_from_cfg(values, doc["machines"])
        filter_enabled = as_bool(values, "polar_filter", True)
        physics_enabled = as_bool(values, "physics", True)
        breakdown = predict(doc, point, filter_enabled, physics_enabled)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1

    total = sum(breakdown[phase] for phase in PHASES)
    dt_sec = float(values.get("dt_sec", "450"))
    steps_per_day = 86400.0 / dt_sec

    if args.json:
        out: dict[str, Any] = {"schema": SCHEMA, "point": point}
        for phase in PHASES:
            out[f"{phase}_per_step_sec"] = breakdown[phase]
        out["total_per_step_sec"] = total
        out["total_per_day_sec"] = total * steps_per_day
        print(json.dumps(out, separators=(",", ":")))
        return 0

    ranks = point["mesh_rows"] * point["mesh_cols"]
    print(f"configuration: {point['machine']}, "
          f"{point['nlon']}x{point['nlat']}x{point['nlev']}, "
          f"{point['mesh_rows']}x{point['mesh_cols']} mesh ({ranks} ranks), "
          f"{point['filter_backend']}, "
          f"lb {'on' if point['lb_enabled'] else 'off'}")
    print(f"{'phase':<18} {'sec/step':>14} {'sec/day':>14}")
    for phase in PHASES:
        sec = breakdown[phase]
        print(f"{phase:<18} {sec:>14.6f} {sec * steps_per_day:>14.3f}")
    print(f"{'total':<18} {total:>14.6f} {total * steps_per_day:>14.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
