#!/usr/bin/env python3
"""Perf-regression sentinel: diff fresh bench/perf-model artefacts against
committed baselines.

The virtual multicomputer makes the scaling artefacts deterministic, so the
baseline policy can be aggressive:

  * structure (keys, their order is ignored but their *set* is not, array
    lengths, value kinds) must match exactly;
  * strings, booleans and integral numbers (exponents snapped to the PMNF
    grid, counts, verdict flags) must match exactly — a drift here means a
    complexity class or a gate flipped, which is precisely what the sentinel
    exists to catch;
  * non-integral numbers (fitted coefficients c0/c1, r2, cv_rmse, virtual
    seconds, percentiles) are compared with a relative tolerance, default
    1e-9: bit-level wobble from FMA contraction differences between
    compilers is tolerated, anything a model could care about is not.

Paths can be excluded with --ignore REGEX (matched against the dotted path,
e.g. "metrics\\..*\\.mean") for fields that are legitimately host-dependent.
The `simd_dispatch` metadata block every bench JSON carries (active tier,
CPU feature list — see docs/kernels.md) is host-dependent by construction
and is always ignored.

Usage:
  perf_diff.py BASELINE FRESH [--rtol 1e-9] [--ignore REGEX ...]
  perf_diff.py --update BASELINE FRESH      # copy FRESH over BASELINE
  perf_diff.py --summary MODEL.json         # human-readable model table

`--summary` prints the fitted models in a performance-model artefact as a
table — one row per phase with the selected complexity class, exponents
and r2 — instead of diffing. It understands both artefact schemas:
agcm-perfmodel-v1 (PERF_MODEL.json, per-phase PMNF fits) and
agcm-predict-v1 (PREDICT_MODEL.json, composition trees; see
docs/perfmodel.md).

Exit status: 0 when within tolerance, 1 on any drift (every drifted path is
printed), 2 on usage/IO errors.
"""

import argparse
import json
import math
import re
import shutil
import sys


# Always-ignored paths: metadata that legitimately differs between hosts
# (and between a baseline committed before the field existed and a fresh
# artefact that carries it).
DEFAULT_IGNORES = [r"\.simd_dispatch(\.|\[|$)"]


def is_integral(x):
    return isinstance(x, bool) or isinstance(x, int) or (
        isinstance(x, float) and math.isfinite(x) and x == int(x))


def classify(x):
    if isinstance(x, bool):
        return "bool"
    if isinstance(x, (int, float)):
        return "number"
    if isinstance(x, str):
        return "string"
    if isinstance(x, list):
        return "array"
    if isinstance(x, dict):
        return "object"
    return "null"


def rel_close(a, b, rtol):
    if a == b:
        return True
    scale = max(abs(a), abs(b))
    return abs(a - b) <= rtol * scale


def diff(baseline, fresh, path, rtol, ignores, failures):
    if any(rx.search(path) for rx in ignores):
        return
    kb, kf = classify(baseline), classify(fresh)
    if kb != kf:
        failures.append(f"{path}: kind {kb} -> {kf}")
        return
    if kb == "object":
        # Consult the ignore list for the *child* path before reporting a
        # missing/new field — an ignored subtree may legitimately exist on
        # one side only (e.g. simd_dispatch vs a pre-existing baseline).
        def ignored(child):
            return any(rx.search(child) for rx in ignores)

        for key in baseline:
            if key not in fresh and not ignored(f"{path}.{key}"):
                failures.append(f"{path}.{key}: missing in fresh artefact")
        for key in fresh:
            if key not in baseline and not ignored(f"{path}.{key}"):
                failures.append(f"{path}.{key}: not in baseline (new field; "
                                "re-baseline with --update)")
        for key in baseline:
            if key in fresh:
                diff(baseline[key], fresh[key], f"{path}.{key}", rtol,
                     ignores, failures)
    elif kb == "array":
        if len(baseline) != len(fresh):
            failures.append(
                f"{path}: length {len(baseline)} -> {len(fresh)}")
            return
        for i, (b, f) in enumerate(zip(baseline, fresh)):
            diff(b, f, f"{path}[{i}]", rtol, ignores, failures)
    elif kb == "number":
        if is_integral(baseline) and is_integral(fresh):
            if float(baseline) != float(fresh):
                failures.append(f"{path}: {baseline} -> {fresh} (integral, "
                                "exact match required)")
        elif not rel_close(float(baseline), float(fresh), rtol):
            rel = abs(float(baseline) - float(fresh)) / max(
                abs(float(baseline)), abs(float(fresh)))
            failures.append(
                f"{path}: {baseline} -> {fresh} (rel {rel:.3e} > {rtol:g})")
    else:  # string / bool / null
        if baseline != fresh:
            failures.append(f"{path}: {baseline!r} -> {fresh!r}")


def print_table(rows, headers):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(fmt.format(*headers))
    print(fmt.format(*("-" * w for w in widths)))
    for row in rows:
        print(fmt.format(*row))


def summarize(path):
    """Prints the fitted models in a PERF_MODEL / PREDICT_MODEL artefact."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_diff: cannot read {path}: {e}", file=sys.stderr)
        return 2

    schema = doc.get("schema")
    if schema == "agcm-perfmodel-v1":
        rows = []
        for entry in doc.get("phases", []):
            model = entry.get("model", {})
            verdict = entry.get("verdict", {})
            rows.append([
                entry.get("phase", "?"),
                str(entry.get("series", {}).get("parameter", "?")),
                model.get("complexity", "?"),
                f"{model.get('exponent_a', 0):g}",
                str(model.get("log_power_b", 0)),
                f"{model.get('r2', 0):.4f}",
                "PASS" if verdict.get("pass") else "FAIL",
            ])
        print(f"{path}: {schema}, report '{doc.get('report', '?')}'")
        print_table(rows, ["phase", "parameter", "complexity", "a", "b",
                           "r2", "verdict"])
    elif schema == "agcm-predict-v1":
        rows = []
        for entry in doc.get("phases", []):
            tree = entry.get("tree", {})
            terms = []

            def walk(node):
                if node.get("op") == "leaf":
                    if node.get("weight", 0) > 0:
                        terms.append(node.get("driver", "?"))
                else:
                    for child in node.get("children", []):
                        walk(child)

            walk(tree)
            rows.append([
                entry.get("phase", "?"),
                entry.get("selector") or "-",
                f"{entry.get('r2', 0):.4f}",
                f"{entry.get('rmse', 0):.3e}",
                str(entry.get("n_train", 0)),
                ", ".join(terms) if terms else "(intercept only)",
            ])
        print(f"{path}: {schema}, {len(doc.get('machines', {}))} machine(s)")
        print_table(rows, ["phase", "selector", "r2", "rmse", "n", "terms"])
        gates = doc.get("gates", [])
        if gates:
            print()
            for gate in gates:
                status = "PASS" if gate.get("pass") else "FAIL"
                print(f"  gate {gate.get('name', '?'):<18} [{status}] "
                      f"{gate.get('detail', '')}")
    else:
        print(f"perf_diff: {path}: unknown model schema {schema!r}",
              file=sys.stderr)
        return 2
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh", nargs="?")
    parser.add_argument("--rtol", type=float, default=1e-9,
                        help="relative tolerance for non-integral numbers")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="REGEX",
                        help="skip dotted paths matching REGEX")
    parser.add_argument("--update", action="store_true",
                        help="copy FRESH over BASELINE and exit 0")
    parser.add_argument("--summary", action="store_true",
                        help="print the model table of a single artefact "
                             "instead of diffing")
    args = parser.parse_args()

    if args.summary:
        if args.fresh is not None:
            parser.error("--summary takes a single artefact")
        return summarize(args.baseline)
    if args.fresh is None:
        parser.error("diffing needs BASELINE and FRESH")

    if args.update:
        shutil.copyfile(args.fresh, args.baseline)
        print(f"perf_diff: re-baselined {args.baseline} from {args.fresh}")
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_diff: cannot read baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 2
    try:
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_diff: cannot read fresh artefact {args.fresh}: {e}",
              file=sys.stderr)
        return 2

    ignores = [re.compile(p) for p in DEFAULT_IGNORES + args.ignore]
    failures = []
    diff(baseline, fresh, "$", args.rtol, ignores, failures)

    if failures:
        print(f"perf_diff: {args.fresh} drifted from {args.baseline} "
              f"({len(failures)} path(s)):")
        for line in failures:
            print(f"  {line}")
        print("perf_diff: if the change is intentional, re-baseline with\n"
              f"  tools/perf_diff.py --update {args.baseline} {args.fresh}")
        return 1
    print(f"perf_diff: {args.fresh} matches {args.baseline} "
          f"(rtol {args.rtol:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
