#!/usr/bin/env python3
"""Index, filter and validate campaign result stores (agcm-campaign-v1).

A store is the JSON-lines file written by `campaign_run` (or
`campaign::write_store`): one record per experiment, carrying the config
hash, the canonical config, the virtual-time breakdown and diagnostics,
and optionally the host wall time. See docs/campaign.md.

Usage:
    tools/campaign_query.py store.jsonl [more.jsonl ...] [options]

Filters (AND-ed; a record must match all of them):
    --campaign NAME       campaign name equals NAME
    --cell SUBSTR         cell name contains SUBSTR
    --hash PREFIX         config_hash starts with PREFIX
    --where KEY=VALUE     config key equals VALUE (repeatable), e.g.
                          --where machine=Cray\\ T3D --where lb_scheme=pairwise

Output (default: an index table, one row per record):
    --fields a,b,c        table columns as dotted paths into the record
                          (e.g. virtual.total_per_day_sec, config.nlon)
    --sort PATH           sort rows by this dotted path (numeric if possible)
    --json                print matching records as JSON lines instead
    --strip-wall          with --json: drop wall_sec (and any other wall-
                          clock field) so the output is byte-comparable
                          across hosts and runs
    --check               validate every record against the schema and exit
                          (0 = all valid); combine with filters to narrow
    --drift               admission-planner drift report: predicted vs
                          actual per-day totals for every record that
                          carries a "predicted" block (campaign_run
                          --predict), with median/max relative error

Standard library only, so CI can run it anywhere.
"""
from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterator

SCHEMA = "agcm-campaign-v1"

# Host-dependent fields stripped by --strip-wall; everything else in a
# record is virtual or configuration, deterministic by construction.
WALL_FIELDS = ("wall_sec",)

REQUIRED_TOP = {
    "schema": str,
    "campaign": str,
    "cell": str,
    "config_hash": str,
    "config": dict,
    "virtual": dict,
    "diagnostics": dict,
}

REQUIRED_VIRTUAL = (
    "steps",
    "filter_per_step_sec",
    "halo_per_step_sec",
    "fd_per_step_sec",
    "physics_compute_per_step_sec",
    "physics_balance_per_step_sec",
    "dynamics_per_day_sec",
    "physics_per_day_sec",
    "total_per_day_sec",
    "filter_setup_sec",
)

REQUIRED_DIAGNOSTICS = (
    "physics_imbalance_before",
    "physics_imbalance_after",
    "mass_drift_rel",
    "max_zonal_courant",
    "max_gravity_courant",
    "total_messages",
    "total_bytes",
)

# Optional blocks (validated only when present, so pre-existing stores
# stay valid): the planner's prediction and the per-phase percentiles.
PREDICTED_FIELDS = (
    "filter_per_step_sec",
    "halo_per_step_sec",
    "fd_per_step_sec",
    "physics_compute_per_step_sec",
    "physics_balance_per_step_sec",
    "total_per_step_sec",
    "total_per_day_sec",
)

PERCENTILE_PHASES = (
    "filter",
    "halo",
    "fd",
    "physics_compute",
    "physics_balance",
)

DEFAULT_FIELDS = (
    "config_hash",
    "cell",
    "virtual.total_per_day_sec",
    "wall_sec",
)


def read_records(paths: list[str]) -> Iterator[tuple[str, int, dict]]:
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as err:
                    raise ValueError(f"{path}:{lineno}: bad JSON: {err}")
                if not isinstance(record, dict):
                    raise ValueError(f"{path}:{lineno}: record is not an "
                                     "object")
                yield path, lineno, record


def lookup(record: dict, path: str) -> Any:
    """Resolves a dotted path; missing components yield None."""
    node: Any = record
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def matches(record: dict, args: argparse.Namespace) -> bool:
    if args.campaign is not None and record.get("campaign") != args.campaign:
        return False
    if args.cell is not None and args.cell not in str(record.get("cell", "")):
        return False
    if args.hash is not None and not str(
        record.get("config_hash", "")
    ).startswith(args.hash):
        return False
    for clause in args.where:
        key, _, value = clause.partition("=")
        if str(lookup(record, "config." + key)) != value:
            return False
    return True


def validate(where: str, record: dict) -> list[str]:
    errors = []
    for key, kind in REQUIRED_TOP.items():
        if key not in record:
            errors.append(f"missing '{key}'")
        elif not isinstance(record[key], kind):
            errors.append(f"'{key}' must be {kind.__name__}")
    if errors:
        return [f"{where}: {e}" for e in errors]
    if record["schema"] != SCHEMA:
        errors.append(f"schema is {record['schema']!r}, want {SCHEMA!r}")
    if len(record["config_hash"]) != 16 or any(
        c not in "0123456789abcdef" for c in record["config_hash"]
    ):
        errors.append("config_hash must be 16 lowercase hex digits")
    for key in REQUIRED_VIRTUAL:
        value = record["virtual"].get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(f"virtual.{key} must be a number")
    for key in REQUIRED_DIAGNOSTICS:
        value = record["diagnostics"].get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(f"diagnostics.{key} must be a number")
    if not all(isinstance(v, str) for v in record["config"].values()):
        errors.append("config values must all be strings")
    if "wall_sec" in record:
        value = record["wall_sec"]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append("wall_sec must be a number")
        elif value < 0:
            errors.append("wall_sec must be non-negative")
    if "predicted" in record:
        predicted = record["predicted"]
        if not isinstance(predicted, dict):
            errors.append("'predicted' must be an object")
        else:
            for key in PREDICTED_FIELDS:
                value = predicted.get(key)
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    errors.append(f"predicted.{key} must be a number")
    percentiles = record["diagnostics"].get("phase_percentiles")
    if percentiles is not None:
        if not isinstance(percentiles, dict):
            errors.append("diagnostics.phase_percentiles must be an object")
        else:
            for phase in PERCENTILE_PHASES:
                block = percentiles.get(phase)
                if not isinstance(block, dict):
                    errors.append(
                        f"phase_percentiles.{phase} must be an object")
                    continue
                for q in ("p50", "p95", "p99"):
                    value = block.get(q)
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        errors.append(
                            f"phase_percentiles.{phase}.{q} must be a number")
    return [f"{where}: {e}" for e in errors]


def sort_key(value: Any) -> tuple[int, Any]:
    """Numbers before strings before missing, numerically where possible."""
    if value is None:
        return (2, "")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, value)
    try:
        return (0, float(value))
    except (TypeError, ValueError):
        return (1, str(value))


def render(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def print_table(rows: list[list[str]], headers: list[str]) -> None:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(fmt.format(*headers))
    print(fmt.format(*("-" * w for w in widths)))
    for row in rows:
        print(fmt.format(*row))


def drift_report(records: list[tuple[str, int, dict]]) -> int:
    """Predicted vs actual per-day totals for planner-admitted records."""
    rows = []
    errors = []
    for _, _, record in records:
        predicted = record.get("predicted")
        if not isinstance(predicted, dict):
            continue
        actual = lookup(record, "virtual.total_per_day_sec")
        forecast = predicted.get("total_per_day_sec")
        if not isinstance(actual, (int, float)) or not isinstance(
            forecast, (int, float)
        ):
            continue
        rel = abs(forecast - actual) / abs(actual) if actual else 0.0
        errors.append(rel)
        rows.append([
            str(record.get("cell", "-")),
            f"{forecast:.3f}",
            f"{actual:.3f}",
            f"{100.0 * rel:.1f}%",
        ])
    if not rows:
        print("no records carry a 'predicted' block (run campaign_run "
              "with --predict)")
        return 1
    print_table(rows, ["cell", "predicted_per_day", "actual_per_day",
                       "drift"])
    ordered = sorted(errors)
    n = len(ordered)
    med = (ordered[n // 2] if n % 2 else
           0.5 * (ordered[n // 2 - 1] + ordered[n // 2]))
    print(f"{n} record(s): median drift {100.0 * med:.1f}%, "
          f"max {100.0 * max(ordered):.1f}%")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("stores", nargs="+", help="JSON-lines store file(s)")
    parser.add_argument("--campaign")
    parser.add_argument("--cell")
    parser.add_argument("--hash")
    parser.add_argument("--where", action="append", default=[],
                        metavar="KEY=VALUE")
    parser.add_argument("--fields", default=",".join(DEFAULT_FIELDS))
    parser.add_argument("--sort", metavar="PATH")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--strip-wall", action="store_true")
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--drift", action="store_true")
    args = parser.parse_args(argv[1:])

    for clause in args.where:
        if "=" not in clause:
            parser.error(f"--where needs KEY=VALUE, got {clause!r}")
    if args.strip_wall and not (args.json or args.check):
        parser.error("--strip-wall only makes sense with --json")

    try:
        records = [
            (path, lineno, record)
            for path, lineno, record in read_records(args.stores)
            if matches(record, args)
        ]
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1

    if args.check:
        errors: list[str] = []
        for path, lineno, record in records:
            errors.extend(validate(f"{path}:{lineno}", record))
        for error in errors:
            print(f"FAIL {error}", file=sys.stderr)
        if not errors:
            print(f"ok   {len(records)} record(s) valid ({SCHEMA})")
        return 1 if errors else 0

    if args.drift:
        return drift_report(records)

    if args.sort:
        records.sort(key=lambda r: sort_key(lookup(r[2], args.sort)))

    if args.json:
        for _, _, record in records:
            if args.strip_wall:
                record = {
                    k: v for k, v in record.items() if k not in WALL_FIELDS
                }
            print(json.dumps(record, separators=(",", ":")))
        return 0

    fields = [f.strip() for f in args.fields.split(",") if f.strip()]
    rows = [
        [render(lookup(record, f)) for f in fields]
        for _, _, record in records
    ]
    print_table(rows, fields)
    print(f"{len(records)} record(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
