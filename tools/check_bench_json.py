#!/usr/bin/env python3
"""Validate BENCH_*.json / TRACE_*.json artefacts written by the bench
harness (see docs/observability.md). Standard library only, so CI can run
it anywhere.

Usage:
    tools/check_bench_json.py BENCH_fig1_breakdown.json [more.json ...]

Exit status is nonzero if any file fails validation. BENCH files are
checked against the agcm-bench-v1 schema; files whose top level contains
"traceEvents" are checked as Chrome Trace Event Format documents.
"""
from __future__ import annotations

import json
import sys


def fail(path: str, msg: str) -> None:
    raise ValueError(f"{path}: {msg}")


# Per-bench required top-level fields: name -> {field: required type}.
# Benches that self-gate (nonzero exit on regression) must also publish the
# gate inputs and verdict in their JSON so CI failures are diagnosable from
# the artefact alone (docs/transport.md, "gating").
REQUIRED_FIELDS = {
    "comm_transport": {
        "halo_mb_per_s_seed": float,
        "halo_mb_per_s_pooled": float,
        "halo_speedup": float,
        "transpose_mb_per_s_seed": float,
        "transpose_mb_per_s_pooled": float,
        "transpose_speedup": float,
        "gate_halo_speedup_min": float,
        "gate_transpose_speedup_min": float,
        "gates_passed": bool,
    },
    # Only the fields common to both modes: --check-only omits the host
    # speedup numbers so its JSON stays deterministic for the CI fence.
    "kernel_engine": {
        "mode": str,
        "advection_bitwise_identical": bool,
        "physics_bitwise_identical": bool,
        "stencil_separate_bitwise_identical": bool,
        "stencil_block_bitwise_identical": bool,
        "advection_checksum": float,
        "physics_checksum": float,
        "stencil_separate_checksum": float,
        "stencil_block_checksum": float,
        "gate_advection_speedup_min": float,
        "gate_physics_speedup_min": float,
        "gates_passed": bool,
    },
    # Only the fields common to both modes: --check-only (CI determinism
    # fence) omits the host speedup numbers; full mode adds
    # advection_speedup/pointwise_speedup (or speed_gates_skipped when the
    # host tops out at the scalar tier).
    "simd_dispatch": {
        "mode": str,
        "active_tier": str,
        "detected_tier": str,
        "tiers_checked": float,
        "advection_bitwise_identical": bool,
        "pointwise_bitwise_identical": bool,
        "stencil_bitwise_identical": bool,
        "daxpy_bitwise_identical": bool,
        "forced_scalar_bitwise_identical": bool,
        "ddot_max_ulp": float,
        "longwave_max_ulp": float,
        "fft_max_ulp": float,
        "gate_speedup_min": float,
        "gates_passed": bool,
    },
    "stencil_layout": {
        "paper_anchor_paragon": float,
        "paper_anchor_t3d": float,
        "anchor_speedup_paragon": float,
        "anchor_speedup_t3d": float,
    },
    "resolution_scaling": {
        "eff_coarsest": float,
        "eff_finest": float,
        "eff_improves_with_resolution": bool,
    },
    "ablation_comm": {
        "ring_vs_tree_msg_ratio": float,
        "tree_more_bytes_than_ring": bool,
        "lb_gain_short_mesh": float,
        "lb_gain_tall_mesh": float,
        "lb_gain_grows_with_rows": bool,
    },
    "simnet_sched": {
        "p64_threads_ms": float,
        "p64_fibers_ms": float,
        "p64_speedup": float,
        "gate_speedup_min": float,
        "virtual_times_match": bool,
        "p1024_wall_ms": float,
        "p1024_completed": bool,
        "gates_passed": bool,
    },
    # Self-gating: >=3x concurrent shared-cache throughput over sequential
    # cold-cache, plus the store determinism fences (bench exits nonzero
    # when any fails). The wall/throughput numbers are host-dependent; the
    # two store_* booleans and gates_passed are the portable verdict.
    "campaign_throughput": {
        "cells": float,
        "concurrency": float,
        "wall_cold_sec": float,
        "wall_concurrent_sec": float,
        "throughput_cold_eps": float,
        "throughput_concurrent_eps": float,
        "speedup": float,
        "gate_speedup_min": float,
        "store_deterministic": bool,
        "store_matches_standalone": bool,
        "gates_passed": bool,
    },
    "scaling_model": {
        "perf_model_path": str,
        "fit_conv_exponent_a": float,
        "fit_conv_log_power_b": float,
        "fit_fft_exponent_a": float,
        "fit_fft_log_power_b": float,
        "fit_partition_exponent_a": float,
        "fit_partition_log_power_b": float,
        "fit_transpose_exponent_a": float,
        "fit_transpose_log_power_b": float,
        "conv_dominates_fft": bool,
        "conv_dominates_partition": bool,
        "imbalance_before": float,
        "imbalance_after": float,
        "all_pass": bool,
        "perf_model": dict,
    },
    # Only the fields common to both modes: --check-only (CI determinism
    # fence) omits the host speedup table; full mode adds
    # host_speedup_nlon576/host_speedup_nlon1152/host_gate_pass.
    # Self-gating: >= 8 holdout configurations, median whole-step relative
    # error < 10%, max < 25% (bench exits nonzero when any fails). The
    # full agcm-predict-v1 document is mirrored under "predict_model".
    "predict_model": {
        "predict_model_path": str,
        "n_train": float,
        "n_holdout": float,
        "median_rel_error": float,
        "max_rel_error": float,
        "all_pass": bool,
        "predict_model": dict,
    },
    "filter_partition": {
        "mode": str,
        "block_nlon144": float,
        "block_nlon576": float,
        "fft_size_nlon576": float,
        "nparts_nlon576": float,
        "nblocks_nlon576": float,
        "model_crossover_fft_vs_conv_nlon": float,
        "model_crossover_partition_vs_conv_nlon": float,
        "equiv_cases": float,
        "equiv_max_ulp": float,
        "equiv_ulp_envelope": float,
        "equiv_pass": bool,
        "virtual_partition_vs_conv_speedup_nlon576": float,
        "partition_wins_three_way_at_nlon576": bool,
        "fit_partition_exponent_a": float,
        "fit_partition_log_power_b": float,
        "fit_partition_r2": float,
        "fit_partition_pass": bool,
        "gate_speedup_min": float,
        "gates_passed": bool,
    },
}


def check_required_fields(path: str, doc: dict) -> str:
    required = REQUIRED_FIELDS.get(doc.get("bench", ""))
    if required is None:
        return ""
    for name, kind in required.items():
        if name not in doc:
            fail(path, f"missing required field '{name}'")
        value = doc[name]
        if kind is float:
            # bool is an int subclass; reject it explicitly.
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                fail(path, f"'{name}' must be a number")
        elif not isinstance(value, kind):
            fail(path, f"'{name}' must be {kind.__name__}")
    if doc["bench"] == "comm_transport":
        return (
            f", halo {doc['halo_speedup']:.2f}x / transpose "
            f"{doc['transpose_speedup']:.2f}x, gates_passed="
            f"{doc['gates_passed']}"
        )
    if doc["bench"] == "kernel_engine":
        return (
            f", mode={doc['mode']}, bitwise="
            f"{doc['advection_bitwise_identical'] and doc['physics_bitwise_identical']}"
            f", gates_passed={doc['gates_passed']}"
        )
    if doc["bench"] == "simd_dispatch":
        return (
            f", mode={doc['mode']}, active={doc['active_tier']}, bitwise="
            f"{doc['advection_bitwise_identical'] and doc['pointwise_bitwise_identical']}"
            f", gates_passed={doc['gates_passed']}"
        )
    if doc["bench"] == "simnet_sched":
        return (
            f", P=64 fibers {doc['p64_speedup']:.2f}x threads, virtual "
            f"times match={doc['virtual_times_match']}, gates_passed="
            f"{doc['gates_passed']}"
        )
    if doc["bench"] == "campaign_throughput":
        return (
            f", {doc['cells']:g} cells, {doc['speedup']:.2f}x, store "
            f"deterministic={doc['store_deterministic']}, gates_passed="
            f"{doc['gates_passed']}"
        )
    if doc["bench"] == "scaling_model":
        return (
            f", conv x^{doc['fit_conv_exponent_a']:g} vs fft "
            f"x^{doc['fit_fft_exponent_a']:g} vs partition "
            f"x^{doc['fit_partition_exponent_a']:g}, imbalance "
            f"{doc['imbalance_before']:.0%} -> {doc['imbalance_after']:.0%}, "
            f"all_pass={doc['all_pass']}"
        )
    if doc["bench"] == "predict_model":
        return (
            f", {doc['n_train']:g} train / {doc['n_holdout']:g} holdout, "
            f"median {doc['median_rel_error']:.1%} max "
            f"{doc['max_rel_error']:.1%}, all_pass={doc['all_pass']}"
        )
    if doc["bench"] == "filter_partition":
        return (
            f", mode={doc['mode']}, crossover nlon "
            f"{doc['model_crossover_partition_vs_conv_nlon']:g}, "
            f"equiv {doc['equiv_max_ulp']:.1f} ulp, gates_passed="
            f"{doc['gates_passed']}"
        )
    return f", {len(required)} required fields present"


def check_simd_dispatch_block(path: str, block: object) -> None:
    """The per-host SIMD dispatch metadata every bench JSON now carries
    (bench_common.hpp). Host-dependent by design — perf_diff.py ignores it
    when comparing runs."""
    if not isinstance(block, dict):
        fail(path, "'simd_dispatch' must be an object")
    tiers = ("scalar", "avx2", "avx512")
    for key in ("active_tier", "detected_tier"):
        if block.get(key) not in tiers:
            fail(path, f"simd_dispatch.{key} must be one of {tiers}")
    for key in ("env_override", "built_avx2", "built_avx512"):
        if not isinstance(block.get(key), bool):
            fail(path, f"simd_dispatch.{key} must be bool")
    for key in ("cpu_features", "demoted_families"):
        value = block.get(key)
        if not isinstance(value, list) or not all(
            isinstance(s, str) for s in value
        ):
            fail(path, f"simd_dispatch.{key} must be a list of strings")


def check_table(path: str, i: int, table: object) -> None:
    if not isinstance(table, dict):
        fail(path, f"tables[{i}] is not an object")
    for key in ("title", "headers", "rows"):
        if key not in table:
            fail(path, f"tables[{i}] missing '{key}'")
    headers = table["headers"]
    rows = table["rows"]
    if not isinstance(headers, list) or not all(
        isinstance(h, str) for h in headers
    ):
        fail(path, f"tables[{i}].headers must be a list of strings")
    if not isinstance(rows, list):
        fail(path, f"tables[{i}].rows must be a list")
    for j, row in enumerate(rows):
        if not isinstance(row, list) or not all(
            isinstance(c, str) for c in row
        ):
            fail(path, f"tables[{i}].rows[{j}] must be a list of strings")
        if len(row) > len(headers):
            fail(
                path,
                f"tables[{i}].rows[{j}] has {len(row)} cells but only "
                f"{len(headers)} headers",
            )


def check_bench(path: str, doc: dict) -> str:
    if doc.get("schema") != "agcm-bench-v1":
        fail(path, f"unexpected schema {doc.get('schema')!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "'bench' must be a non-empty string")
    tables = doc.get("tables")
    if not isinstance(tables, list):
        fail(path, "'tables' must be a list")
    for i, table in enumerate(tables):
        check_table(path, i, table)
    if "phases" in doc:
        if not isinstance(doc["phases"], list):
            fail(path, "'phases' must be a list")
        for i, phase in enumerate(doc["phases"]):
            for key in ("name", "calls", "total_sec"):
                if key not in phase:
                    fail(path, f"phases[{i}] missing '{key}'")
    if "metrics" in doc and not isinstance(doc["metrics"], dict):
        fail(path, "'metrics' must be an object")
    if "simd_dispatch" in doc:
        check_simd_dispatch_block(path, doc["simd_dispatch"])
    extra = check_required_fields(path, doc)
    return f"bench '{doc['bench']}', {len(tables)} table(s){extra}"


def check_chrome_trace(path: str, doc: dict) -> str:
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "'traceEvents' must be a list")
    if not events:
        fail(path, "'traceEvents' is empty")
    phases = {"X": 0, "C": 0, "i": 0, "M": 0}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(path, f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str):
            fail(path, f"traceEvents[{i}] missing 'ph'")
        phases[ph] = phases.get(ph, 0) + 1
        if ph == "X":
            for key in ("name", "ts", "dur", "pid", "tid"):
                if key not in event:
                    fail(path, f"traceEvents[{i}] ('X') missing '{key}'")
            if event["dur"] < 0:
                fail(path, f"traceEvents[{i}] has negative duration")
    if phases.get("M", 0) < 1:
        fail(path, "no metadata ('M') events — rank naming is missing")
    return (
        f"chrome trace: {phases.get('X', 0)} spans, "
        f"{phases.get('C', 0)} counter samples, "
        f"{phases.get('i', 0)} instants"
    )


def check_google_benchmark(path: str, doc: dict) -> str:
    """google-benchmark --benchmark_format=json (bench_pointwise_vm)."""
    context = doc.get("context")
    if not isinstance(context, dict):
        fail(path, "'context' must be an object")
    for key in ("date", "num_cpus"):
        if key not in context:
            fail(path, f"context missing '{key}'")
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        fail(path, "'benchmarks' must be a non-empty list")
    for i, bm in enumerate(benchmarks):
        if not isinstance(bm, dict):
            fail(path, f"benchmarks[{i}] is not an object")
        for key in ("name", "real_time", "cpu_time", "time_unit"):
            if key not in bm:
                fail(path, f"benchmarks[{i}] missing '{key}'")
        if not isinstance(bm["real_time"], (int, float)) or bm["real_time"] < 0:
            fail(path, f"benchmarks[{i}].real_time must be a non-negative "
                       "number")
    return f"google-benchmark: {len(benchmarks)} benchmark(s)"


def check_perf_model(path: str, doc: dict) -> str:
    """PERF_MODEL.json (agcm-perfmodel-v1, written by bench_scaling_model)."""
    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail(path, "'phases' must be a non-empty list")
    for i, phase in enumerate(phases):
        for key in ("phase", "series", "model", "expectation", "verdict"):
            if key not in phase:
                fail(path, f"phases[{i}] missing '{key}'")
        model = phase["model"]
        for key in ("complexity", "exponent_a", "log_power_b", "c0", "c1",
                    "r2", "cv_rmse"):
            if key not in model:
                fail(path, f"phases[{i}].model missing '{key}'")
        series = phase["series"]
        if len(series.get("x", [])) != len(series.get("y", [])):
            fail(path, f"phases[{i}].series x/y length mismatch")
        if not isinstance(phase["verdict"].get("pass"), bool):
            fail(path, f"phases[{i}].verdict.pass must be bool")
    gates = doc.get("gates")
    if not isinstance(gates, list):
        fail(path, "'gates' must be a list")
    if not isinstance(doc.get("all_pass"), bool):
        fail(path, "'all_pass' must be bool")
    verdicts = sum(1 for p in phases if p["verdict"]["pass"]) + sum(
        1 for g in gates if g.get("pass"))
    return (f"perf model: {len(phases)} phase(s), {len(gates)} gate(s), "
            f"{verdicts} passing, all_pass={doc['all_pass']}")


def check_node(path: str, where: str, node: object) -> None:
    """One composition-tree node (src/perfmodel/compose.hpp)."""
    if not isinstance(node, dict):
        fail(path, f"{where} must be an object")
    op = node.get("op")
    if op == "leaf":
        if not isinstance(node.get("driver"), str) or not node["driver"]:
            fail(path, f"{where}.driver must be a non-empty string")
        for key in ("exponent_a", "log_power_b", "weight"):
            value = node.get(key)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                fail(path, f"{where}.{key} must be a number")
        return
    if op not in ("sequence", "concurrent", "ring", "tree", "transpose",
                  "pairwise"):
        fail(path, f"{where}.op is {op!r}")
    if op in ("ring", "tree", "transpose", "pairwise") and not isinstance(
        node.get("extent"), str
    ):
        fail(path, f"{where}.extent must be a string")
    children = node.get("children")
    if not isinstance(children, list) or not children:
        fail(path, f"{where}.children must be a non-empty list")
    for i, child in enumerate(children):
        check_node(path, f"{where}.children[{i}]", child)


def check_predict_model(path: str, doc: dict) -> str:
    """PREDICT_MODEL.json (agcm-predict-v1, written by bench_predict_model
    and consumed by tools/predict.py and the campaign planner)."""
    machines = doc.get("machines")
    if not isinstance(machines, dict) or not machines:
        fail(path, "'machines' must be a non-empty object")
    scalar_keys = ("flops_per_sec", "mem_bytes_per_sec", "msg_latency_sec",
                   "link_bytes_per_sec", "send_overhead_sec",
                   "recv_overhead_sec", "loop_startup_elems")
    for name, scalars in machines.items():
        if not isinstance(scalars, dict):
            fail(path, f"machines[{name!r}] must be an object")
        for key in scalar_keys:
            value = scalars.get(key)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                fail(path, f"machines[{name!r}].{key} must be a number")
    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail(path, "'phases' must be a non-empty list")
    for i, phase in enumerate(phases):
        if not isinstance(phase.get("phase"), str) or not phase["phase"]:
            fail(path, f"phases[{i}].phase must be a non-empty string")
        if not isinstance(phase.get("selector"), str):
            fail(path, f"phases[{i}].selector must be a string")
        for key in ("c0", "r2", "rmse", "n_train", "terms_used"):
            value = phase.get(key)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                fail(path, f"phases[{i}].{key} must be a number")
        check_node(path, f"phases[{i}].tree", phase.get("tree"))
    holdout = doc.get("holdout")
    if holdout is not None:
        if not isinstance(holdout, list):
            fail(path, "'holdout' must be a list")
        for i, entry in enumerate(holdout):
            for key in ("name", "point", "actual", "predicted", "rel_error"):
                if key not in entry:
                    fail(path, f"holdout[{i}] missing '{key}'")
    gates = doc.get("gates")
    if gates is not None and not isinstance(gates, list):
        fail(path, "'gates' must be a list")
    if "all_pass" in doc and not isinstance(doc["all_pass"], bool):
        fail(path, "'all_pass' must be bool")
    return (f"predict model: {len(machines)} machine(s), {len(phases)} "
            f"phase predictor(s), {len(holdout or [])} holdout(s), "
            f"all_pass={doc.get('all_pass')}")


def check_file(path: str) -> str:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(path, "top level must be an object")
    if "traceEvents" in doc:
        return check_chrome_trace(path, doc)
    if doc.get("schema") == "agcm-perfmodel-v1":
        return check_perf_model(path, doc)
    if doc.get("schema") == "agcm-predict-v1":
        return check_predict_model(path, doc)
    if "context" in doc and "benchmarks" in doc:
        return check_google_benchmark(path, doc)
    return check_bench(path, doc)


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            summary = check_file(path)
        except (ValueError, OSError, json.JSONDecodeError) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            status = 1
        else:
            print(f"ok   {path}: {summary}")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
