#!/usr/bin/env python3
"""Check in-repo relative links in markdown files.

Walks every tracked *.md file (or the paths given on the command line),
extracts inline markdown links and images, and verifies that each
relative target resolves to an existing file or directory. External
schemes (http/https/mailto) and pure in-page anchors (#...) are skipped;
a #fragment on a relative link is stripped before the existence check.
Standard library only, so CI can run it anywhere.

Usage:
    tools/check_md_links.py            # all *.md under the repo root
    tools/check_md_links.py README.md docs/*.md

Exit status is nonzero if any link target is missing.
"""
from __future__ import annotations

import os
import re
import sys

# Inline links/images: [text](target) / ![alt](target). Titles after the
# target ("... path "title")") are separated by whitespace, so the regex
# stops the target at the first whitespace or closing parenthesis.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", "build-san", "build-tsan", ".cache"}


def md_files(root: str) -> list[str]:
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
        )
        for name in sorted(filenames):
            if name.endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return out


def check_file(path: str) -> list[str]:
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    errors = []
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        # Links inside fenced code blocks are examples, not references.
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target.split("#", 1)[0])
            )
            if not os.path.exists(resolved):
                errors.append(
                    f"{path}:{lineno}: broken link '{target}' "
                    f"(resolved to {resolved})"
                )
    return errors


def main(argv: list[str]) -> int:
    paths = argv[1:] or md_files(".")
    if not paths:
        print("check_md_links: no markdown files found", file=sys.stderr)
        return 2
    errors = []
    checked = 0
    for path in paths:
        errors.extend(check_file(path))
        checked += 1
    for err in errors:
        print(f"FAIL {err}", file=sys.stderr)
    print(f"check_md_links: {checked} file(s) checked, {len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
