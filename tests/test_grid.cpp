// Tests for the grid library: arrays, geometry, partitions (property-swept)
// and the halo exchange across mesh shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <numbers>
#include <tuple>
#include <utility>

#include "comm/mesh2d.hpp"
#include "grid/array3d.hpp"
#include "grid/decomp.hpp"
#include "grid/halo.hpp"
#include "grid/latlon.hpp"
#include "simnet/machine.hpp"

namespace agcm::grid {
namespace {

using comm::Communicator;
using comm::Mesh2D;
using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

TEST(Array3D, IndexingAndFill) {
  Array3D<double> a(4, 3, 2, 1);
  a.fill(1.0);
  a(0, 0, 0) = 5.0;
  a(-1, -1, 0) = 7.0;  // ghost corner
  a(3, 2, 1) = 9.0;
  EXPECT_DOUBLE_EQ(a(0, 0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a(-1, -1, 0), 7.0);
  EXPECT_DOUBLE_EQ(a(3, 2, 1), 9.0);
  EXPECT_DOUBLE_EQ(a(1, 1, 1), 1.0);
}

TEST(Array3D, RowIsContiguousInterior) {
  Array3D<double> a(5, 2, 2, 1);
  for (int i = 0; i < 5; ++i) a(i, 1, 1) = 10.0 + i;
  const auto row = a.row(1, 1);
  ASSERT_EQ(row.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>(i)], 10.0 + i);
  EXPECT_EQ(&row[1], &row[0] + 1);
}

TEST(Array3D, PackUnpackRoundTripExcludesGhosts) {
  Array3D<double> a(3, 2, 2, 1);
  double v = 0.0;
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 2; ++j)
      for (int i = 0; i < 3; ++i) a(i, j, k) = v++;
  a(-1, 0, 0) = 999.0;
  const auto packed = a.pack_interior();
  EXPECT_EQ(packed.size(), a.interior_size());
  Array3D<double> b(3, 2, 2, 1);
  b.unpack_interior(packed);
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 2; ++j)
      for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(b(i, j, k), a(i, j, k));
  EXPECT_DOUBLE_EQ(b(-1, 0, 0), 0.0);  // ghosts untouched
}

TEST(Array3D, StorageIsCacheLineAlignedAndGhostRowsPadded) {
  // Base pointer 64-byte aligned for any shape.
  for (int ni : {1, 3, 7, 144}) {
    Array3D<double> a(ni, 2, 2, 1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.raw().data()) %
                  Array3D<double>::kAlignBytes,
              0u)
        << "ni=" << ni;
    // Ghosted arrays: j-stride rounded up to a whole cache line and every
    // backing row start stays aligned.
    EXPECT_EQ(a.stride_j() % (Array3D<double>::kAlignBytes / sizeof(double)),
              0u);
    EXPECT_GE(a.stride_j(), static_cast<std::size_t>(ni) + 2);
  }
  // Ghost-free arrays are exact (contiguous interior, no padding).
  Array3D<double> b(5, 3, 2, 0);
  EXPECT_TRUE(b.contiguous_interior());
  EXPECT_EQ(b.stride_j(), 5u);
  EXPECT_EQ(b.raw().size(), b.interior_size());
  Array3D<double> c(5, 3, 2, 1);
  EXPECT_FALSE(c.contiguous_interior());
}

TEST(Array3D, FieldViewMatchesAtAccessor) {
  Array3D<double> a(5, 4, 3, 2);
  double v = 0.0;
  for (int k = 0; k < 3; ++k)
    for (int j = -2; j < 6; ++j)
      for (int i = -2; i < 7; ++i) a(i, j, k) = v += 0.5;
  const FieldView fv = a.view();
  const ConstFieldView cv = std::as_const(a).view();
  EXPECT_EQ(fv.ni, 5);
  EXPECT_EQ(fv.nj, 4);
  EXPECT_EQ(fv.nk, 3);
  EXPECT_EQ(fv.ghost, 2);
  for (int k = 0; k < 3; ++k)
    for (int j = -2; j < 6; ++j) {
      const double* row = fv.row(j, k);
      EXPECT_EQ(row, cv.row(j, k));
      for (int i = -2; i < 7; ++i) {
        EXPECT_EQ(&row[i], &a.at(i, j, k)) << i << "," << j << "," << k;
        EXPECT_EQ(fv.at(i, j, k), a.at(i, j, k));
      }
    }
}

class PackGhostSweep : public ::testing::TestWithParam<int> {};

TEST_P(PackGhostSweep, PackUnpackRoundTripIsBitExactAllGhosts) {
  const int g = GetParam();
  Array3D<double> a(7, 5, 3, g);
  // Distinct interior values plus ghost poison that must never leak.
  double v = 0.25;
  for (int k = 0; k < 3; ++k)
    for (int j = -g; j < 5 + g; ++j)
      for (int i = -g; i < 7 + g; ++i)
        a(i, j, k) = (i >= 0 && i < 7 && j >= 0 && j < 5) ? (v += 1.0 / 3.0)
                                                          : -777.0;
  const auto packed = a.pack_interior();
  ASSERT_EQ(packed.size(), a.interior_size());
  // i-fastest order, bit exact.
  std::size_t pos = 0;
  for (int k = 0; k < 3; ++k)
    for (int j = 0; j < 5; ++j)
      for (int i = 0; i < 7; ++i, ++pos)
        EXPECT_EQ(std::memcmp(&packed[pos], &a(i, j, k), sizeof(double)), 0);
  Array3D<double> b(7, 5, 3, g);
  b.fill(0.0);
  b.unpack_interior(packed);
  for (int k = 0; k < 3; ++k)
    for (int j = 0; j < 5; ++j)
      for (int i = 0; i < 7; ++i) EXPECT_EQ(b(i, j, k), a(i, j, k));
  if (g > 0) {
    EXPECT_EQ(b(-g, -g, 0), 0.0);  // ghosts untouched
  }
}

INSTANTIATE_TEST_SUITE_P(Ghost, PackGhostSweep, ::testing::Values(0, 1, 2));

TEST(LatLon, PaperGridDimensions) {
  const auto g = LatLonGrid::paper_9layer();
  EXPECT_EQ(g.nlon(), 144);
  EXPECT_EQ(g.nlat(), 90);
  EXPECT_EQ(g.nlev(), 9);
  EXPECT_NEAR(g.dlon_rad() * 180.0 / std::numbers::pi, 2.5, 1e-12);
  EXPECT_NEAR(g.dlat_rad() * 180.0 / std::numbers::pi, 2.0, 1e-12);
}

TEST(LatLon, LatitudesSymmetricAboutEquator) {
  const auto g = LatLonGrid::paper_9layer();
  for (int j = 0; j < g.nlat(); ++j)
    EXPECT_NEAR(g.lat_center(j), -g.lat_center(g.nlat() - 1 - j), 1e-12);
  EXPECT_NEAR(g.lat_vface(0), -std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(g.lat_vface(g.nlat()), std::numbers::pi / 2, 1e-12);
}

TEST(LatLon, PolarFaceCosineIsZero) {
  const auto g = LatLonGrid::paper_9layer();
  EXPECT_DOUBLE_EQ(g.cos_vface(0), 0.0);
  EXPECT_DOUBLE_EQ(g.cos_vface(g.nlat()), 0.0);
}

TEST(LatLon, ZonalSpacingShrinksTowardPoles) {
  const auto g = LatLonGrid::paper_9layer();
  EXPECT_GT(g.dx_m(45), g.dx_m(80));
  EXPECT_GT(g.dx_m(80), g.dx_m(89));
  EXPECT_GT(g.dx_m(89), 0.0);
}

TEST(LatLon, CellAreasSumToSphere) {
  const auto g = LatLonGrid::paper_9layer();
  double total = 0.0;
  for (int j = 0; j < g.nlat(); ++j) total += g.cell_area_m2(j) * g.nlon();
  const double r = g.planet().radius_m;
  EXPECT_NEAR(total, 4.0 * std::numbers::pi * r * r, 1e-3 * total);
}

TEST(LatLon, FilterBands) {
  const auto g = LatLonGrid::paper_9layer();
  int strong = 0, weak = 0;
  for (int j = 0; j < g.nlat(); ++j) {
    if (g.poleward_of(j, 45.0)) ++strong;
    if (g.poleward_of(j, 60.0)) ++weak;
  }
  // "about one half" and "about one third" of the latitudes.
  EXPECT_EQ(strong, 46);
  EXPECT_EQ(weak, 30);
}

TEST(LatLon, RejectsBadDimensions) {
  EXPECT_THROW(LatLonGrid(2, 10, 1), ConfigError);
  EXPECT_THROW(LatLonGrid(16, 1, 1), ConfigError);
  EXPECT_THROW(LatLonGrid(16, 10, 0), ConfigError);
}

// --- partition properties over a sweep of (n, p) ---------------------------

class PartitionSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PartitionSweep, BlocksTileExactly) {
  const auto [n, p] = GetParam();
  const Partition1D part(n, p);
  int covered = 0;
  for (int b = 0; b < p; ++b) {
    EXPECT_EQ(part.start(b), covered);
    EXPECT_GT(part.size(b), 0);
    covered += part.size(b);
  }
  EXPECT_EQ(covered, n);
}

TEST_P(PartitionSweep, SizesDifferByAtMostOne) {
  const auto [n, p] = GetParam();
  const Partition1D part(n, p);
  int lo = n, hi = 0;
  for (int b = 0; b < p; ++b) {
    lo = std::min(lo, part.size(b));
    hi = std::max(hi, part.size(b));
  }
  EXPECT_LE(hi - lo, 1);
}

TEST_P(PartitionSweep, OwnerIsConsistentWithRanges) {
  const auto [n, p] = GetParam();
  const Partition1D part(n, p);
  for (int g = 0; g < n; ++g) {
    const int b = part.owner(g);
    EXPECT_GE(g, part.start(b));
    EXPECT_LT(g, part.end(b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Values(std::pair{144, 30}, std::pair{144, 18}, std::pair{90, 8},
                      std::pair{90, 14}, std::pair{90, 9}, std::pair{7, 7},
                      std::pair{10, 3}, std::pair{100, 1}, std::pair{5, 4}));

TEST(Decomp2D, PaperMeshes) {
  // The paper's 8 x 30 mesh over the 144 x 90 grid.
  const Decomp2D d(144, 90, 8, 30);
  const auto box = d.box({0, 0});
  EXPECT_EQ(box.ni, 5);  // 144 = 24*5 + 6*4 -> first 24 columns get 5
  EXPECT_EQ(box.nj, 12);  // 90 = 2*12 + 6*11
  const auto owner = d.owner(143, 89);
  EXPECT_EQ(owner.row, 7);
  EXPECT_EQ(owner.col, 29);
}

TEST(Decomp2D, RejectsMoreBlocksThanPoints) {
  EXPECT_THROW(Decomp2D(4, 4, 1, 8), ConfigError);
}

// --- halo exchange ----------------------------------------------------------

class HaloSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HaloSweep, GhostsMatchGlobalField) {
  const auto [rows, cols] = GetParam();
  const int nlon = 12, nlat = 8, nlev = 2;
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(10'000);
  machine.run(rows * cols, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, rows, cols);
    const Decomp2D decomp(nlon, nlat, rows, cols);
    const auto box = decomp.box(mesh.coord());
    Array3D<double> field(box.ni, box.nj, nlev, 1);
    auto value = [&](int gi, int gj, int k) {
      return 1000.0 * k + 10.0 * gj + ((gi + nlon) % nlon);
    };
    for (int k = 0; k < nlev; ++k)
      for (int j = 0; j < box.nj; ++j)
        for (int i = 0; i < box.ni; ++i)
          field(i, j, k) = value(box.i0 + i, box.j0 + j, k);

    exchange_halo(mesh, field);

    for (int k = 0; k < nlev; ++k) {
      for (int j = -1; j <= box.nj; ++j) {
        const int gj = box.j0 + j;
        if (gj < 0 || gj >= nlat) continue;  // polar ghosts: untouched
        for (int i = -1; i <= box.ni; ++i) {
          const int gi = box.i0 + i;  // may wrap
          EXPECT_DOUBLE_EQ(field(i, j, k), value(gi, gj, k))
              << "mesh " << rows << "x" << cols << " at (" << i << "," << j
              << "," << k << ")";
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Meshes, HaloSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 3},
                                           std::pair{2, 1}, std::pair{2, 2},
                                           std::pair{2, 3}, std::pair{4, 2},
                                           std::pair{8, 1}, std::pair{2, 6}));

// --- strip program properties -----------------------------------------------

class StripSweep : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(StripSweep, PackUnpackRoundTripIsBitExact) {
  const auto [ni, nj, nk, g] = GetParam();
  Array3D<double> a(ni, nj, nk, g);
  // Distinct value per slot, ghosts included (strips may cover i-ghosts).
  auto raw = a.raw();
  for (std::size_t x = 0; x < raw.size(); ++x)
    raw[x] = 1.0 + 1e-3 * static_cast<double>(x) +
             1e-9 * static_cast<double>(x % 101);

  for (int width = 1; width <= g; ++width) {
    // Every admissible i-strip position, interior and ghost-adjacent.
    for (int i_begin : {-width, 0, ni - width, ni}) {
      std::vector<double> buf(i_strip_elems(a, width), -1.0);
      pack_i_strip(a, i_begin, width, buf);
      Array3D<double> b(ni, nj, nk, g);
      b.fill(0.0);
      unpack_i_strip(b, i_begin, width, buf);
      std::vector<double> buf2(buf.size(), -2.0);
      pack_i_strip(b, i_begin, width, buf2);
      EXPECT_EQ(std::memcmp(buf.data(), buf2.data(),
                            buf.size() * sizeof(double)),
                0)
          << "i-strip width " << width << " at " << i_begin;
      // Pack order is k-outer / j / i-fastest.
      EXPECT_DOUBLE_EQ(buf[0], a(i_begin, 0, 0));
      EXPECT_DOUBLE_EQ(buf.back(), a(i_begin + width - 1, nj - 1, nk - 1));
    }
    for (int j_begin : {-width, 0, nj - width, nj}) {
      std::vector<double> buf(j_strip_elems(a, width, g), -1.0);
      pack_j_strip(a, j_begin, width, g, buf);
      Array3D<double> b(ni, nj, nk, g);
      b.fill(0.0);
      unpack_j_strip(b, j_begin, width, g, buf);
      std::vector<double> buf2(buf.size(), -2.0);
      pack_j_strip(b, j_begin, width, g, buf2);
      EXPECT_EQ(std::memcmp(buf.data(), buf2.data(),
                            buf.size() * sizeof(double)),
                0)
          << "j-strip width " << width << " at " << j_begin;
      // j-strips span the i-ghosts: first element is the west ghost corner.
      EXPECT_DOUBLE_EQ(buf[0], a(-g, j_begin, 0));
      EXPECT_DOUBLE_EQ(buf.back(), a(ni + g - 1, j_begin + width - 1, nk - 1));
    }
  }
}

TEST_P(StripSweep, StripSizesMatchDeclaredFormulas) {
  const auto [ni, nj, nk, g] = GetParam();
  Array3D<double> a(ni, nj, nk, g);
  for (int width = 1; width <= g; ++width) {
    EXPECT_EQ(i_strip_elems(a, width),
              static_cast<std::size_t>(width) * static_cast<std::size_t>(nj) *
                  static_cast<std::size_t>(nk));
    EXPECT_EQ(j_strip_elems(a, width, g),
              static_cast<std::size_t>(width) *
                  static_cast<std::size_t>(ni + 2 * g) *
                  static_cast<std::size_t>(nk));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StripSweep,
    ::testing::Values(std::tuple{6, 4, 1, 1},    // flat single layer
                      std::tuple{5, 9, 3, 2},    // non-square, ghost 2
                      std::tuple{4, 3, 5, 3},    // deep, ghost 3
                      std::tuple{12, 2, 2, 1},   // wide and shallow
                      std::tuple{3, 8, 4, 2}));  // tall block

// --- batched multi-field exchange --------------------------------------------

TEST(HaloBatched, MatchesPerFieldExchangeBitExact) {
  const int rows = 2, cols = 2, nlon = 12, nlat = 8, nlev = 3;
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(10'000);
  machine.run(rows * cols, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, rows, cols);
    const Decomp2D decomp(nlon, nlat, rows, cols);
    const auto box = decomp.box(mesh.coord());

    auto init = [&](Array3D<double>& f, int var) {
      for (int k = 0; k < nlev; ++k)
        for (int j = 0; j < box.nj; ++j)
          for (int i = 0; i < box.ni; ++i)
            f(i, j, k) = 1e4 * var + 100.0 * (box.j0 + j) + (box.i0 + i) +
                         1e-3 * k;
    };
    std::vector<Array3D<double>> batched, serial;
    for (int v = 0; v < 3; ++v) {
      batched.emplace_back(box.ni, box.nj, nlev, 1);
      serial.emplace_back(box.ni, box.nj, nlev, 1);
      init(batched.back(), v);
      init(serial.back(), v);
    }

    Array3D<double>* ptrs[] = {&batched[0], &batched[1], &batched[2]};
    exchange_halos(mesh, ptrs);
    for (auto& f : serial) exchange_halo(mesh, f);

    for (int v = 0; v < 3; ++v) {
      const auto a = batched[static_cast<std::size_t>(v)].raw();
      const auto b = serial[static_cast<std::size_t>(v)].raw();
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
          << "field " << v;
    }
  });
}

TEST(HaloBatched, AggregateModeMovesTheSameData) {
  const int rows = 2, cols = 2, nlon = 12, nlat = 8, nlev = 2;
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(10'000);
  machine.run(rows * cols, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, rows, cols);
    const Decomp2D decomp(nlon, nlat, rows, cols);
    const auto box = decomp.box(mesh.coord());

    auto init = [&](Array3D<double>& f, int var) {
      for (int k = 0; k < nlev; ++k)
        for (int j = 0; j < box.nj; ++j)
          for (int i = 0; i < box.ni; ++i)
            f(i, j, k) = 1e4 * var + 100.0 * (box.j0 + j) + (box.i0 + i) +
                         1e-3 * k;
    };
    std::vector<Array3D<double>> agg, ref;
    for (int v = 0; v < 2; ++v) {
      agg.emplace_back(box.ni, box.nj, nlev, 1);
      ref.emplace_back(box.ni, box.nj, nlev, 1);
      init(agg.back(), v);
      init(ref.back(), v);
    }

    Array3D<double>* aptrs[] = {&agg[0], &agg[1]};
    exchange_halos(mesh, aptrs, /*width=*/1, HaloMode::kAggregate);
    for (auto& f : ref) exchange_halo(mesh, f);

    for (int v = 0; v < 2; ++v) {
      const auto a = agg[static_cast<std::size_t>(v)].raw();
      const auto b = ref[static_cast<std::size_t>(v)].raw();
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
          << "field " << v;
    }
  });
}

TEST(HaloBatched, AggregateSendsFewerMessages) {
  const int rows = 2, cols = 2;
  // Counts the messages of one exchange sweep; `nfields` fields, given mode.
  // Mesh/communicator setup traffic is identical across calls, so the
  // single-field per-field run is the additive baseline.
  auto count_messages = [&](HaloMode mode, int nfields) {
    Machine machine(MachineProfile::ideal());
    machine.set_recv_timeout_ms(10'000);
    const auto result = machine.run(rows * cols, [&](RankContext& ctx) {
      Communicator world(ctx);
      Mesh2D mesh(world, rows, cols);
      const Decomp2D decomp(12, 8, rows, cols);
      const auto box = decomp.box(mesh.coord());
      std::vector<Array3D<double>> fields;
      std::vector<Array3D<double>*> ptrs;
      for (int v = 0; v < nfields; ++v) {
        fields.emplace_back(box.ni, box.nj, 2, 1);
        fields.back().fill(static_cast<double>(v));
      }
      for (auto& f : fields) ptrs.push_back(&f);
      exchange_halos(mesh, ptrs, /*width=*/1, mode);
    });
    return result.total_messages;
  };
  const auto setup_plus_one = count_messages(HaloMode::kPerField, 1);
  const auto per_field3 = count_messages(HaloMode::kPerField, 3);
  const auto aggregate3 = count_messages(HaloMode::kAggregate, 3);
  // Aggregating 3 fields coalesces to exactly one single-field sweep's
  // message count; the per-field mode pays it three times.
  EXPECT_EQ(aggregate3, setup_plus_one);
  EXPECT_GT(per_field3, aggregate3);
}

TEST(HaloBatched, RejectsMismatchedShapes) {
  Machine machine(MachineProfile::ideal());
  EXPECT_THROW(machine.run(1,
                           [&](RankContext& ctx) {
                             Communicator world(ctx);
                             Mesh2D mesh(world, 1, 1);
                             Array3D<double> a(6, 4, 1, 1);
                             Array3D<double> b(6, 5, 1, 1);
                             Array3D<double>* ptrs[] = {&a, &b};
                             exchange_halos(mesh, ptrs);
                           }),
               ConfigError);
}

TEST(Halo, PolarGhostRowsAreLeftUntouched) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(10'000);
  machine.run(1, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 1, 1);
    const Decomp2D decomp(8, 4, 1, 1);
    Array3D<double> field(8, 4, 1, 1);
    field.fill(0.0);
    for (int i = -1; i <= 8; ++i) {
      field(i, -1, 0) = -77.0;
      field(i, 4, 0) = -88.0;
    }
    exchange_halo(mesh, field);
    EXPECT_DOUBLE_EQ(field(0, -1, 0), -77.0);
    EXPECT_DOUBLE_EQ(field(0, 4, 0), -88.0);
  });
}

TEST(Halo, WidthMustBeWithinGhost) {
  Machine machine(MachineProfile::ideal());
  EXPECT_THROW(machine.run(1,
                           [&](RankContext& ctx) {
                             Communicator world(ctx);
                             Mesh2D mesh(world, 1, 1);
                             Array3D<double> f(4, 4, 1, 1);
                             exchange_halo(mesh, f, 2);
                           }),
               ConfigError);
}

}  // namespace
}  // namespace agcm::grid
