// Tests for the grid library: arrays, geometry, partitions (property-swept)
// and the halo exchange across mesh shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "comm/mesh2d.hpp"
#include "grid/array3d.hpp"
#include "grid/decomp.hpp"
#include "grid/halo.hpp"
#include "grid/latlon.hpp"
#include "simnet/machine.hpp"

namespace agcm::grid {
namespace {

using comm::Communicator;
using comm::Mesh2D;
using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

TEST(Array3D, IndexingAndFill) {
  Array3D<double> a(4, 3, 2, 1);
  a.fill(1.0);
  a(0, 0, 0) = 5.0;
  a(-1, -1, 0) = 7.0;  // ghost corner
  a(3, 2, 1) = 9.0;
  EXPECT_DOUBLE_EQ(a(0, 0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a(-1, -1, 0), 7.0);
  EXPECT_DOUBLE_EQ(a(3, 2, 1), 9.0);
  EXPECT_DOUBLE_EQ(a(1, 1, 1), 1.0);
}

TEST(Array3D, RowIsContiguousInterior) {
  Array3D<double> a(5, 2, 2, 1);
  for (int i = 0; i < 5; ++i) a(i, 1, 1) = 10.0 + i;
  const auto row = a.row(1, 1);
  ASSERT_EQ(row.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>(i)], 10.0 + i);
  EXPECT_EQ(&row[1], &row[0] + 1);
}

TEST(Array3D, PackUnpackRoundTripExcludesGhosts) {
  Array3D<double> a(3, 2, 2, 1);
  double v = 0.0;
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 2; ++j)
      for (int i = 0; i < 3; ++i) a(i, j, k) = v++;
  a(-1, 0, 0) = 999.0;
  const auto packed = a.pack_interior();
  EXPECT_EQ(packed.size(), a.interior_size());
  Array3D<double> b(3, 2, 2, 1);
  b.unpack_interior(packed);
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 2; ++j)
      for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(b(i, j, k), a(i, j, k));
  EXPECT_DOUBLE_EQ(b(-1, 0, 0), 0.0);  // ghosts untouched
}

TEST(LatLon, PaperGridDimensions) {
  const auto g = LatLonGrid::paper_9layer();
  EXPECT_EQ(g.nlon(), 144);
  EXPECT_EQ(g.nlat(), 90);
  EXPECT_EQ(g.nlev(), 9);
  EXPECT_NEAR(g.dlon_rad() * 180.0 / std::numbers::pi, 2.5, 1e-12);
  EXPECT_NEAR(g.dlat_rad() * 180.0 / std::numbers::pi, 2.0, 1e-12);
}

TEST(LatLon, LatitudesSymmetricAboutEquator) {
  const auto g = LatLonGrid::paper_9layer();
  for (int j = 0; j < g.nlat(); ++j)
    EXPECT_NEAR(g.lat_center(j), -g.lat_center(g.nlat() - 1 - j), 1e-12);
  EXPECT_NEAR(g.lat_vface(0), -std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(g.lat_vface(g.nlat()), std::numbers::pi / 2, 1e-12);
}

TEST(LatLon, PolarFaceCosineIsZero) {
  const auto g = LatLonGrid::paper_9layer();
  EXPECT_DOUBLE_EQ(g.cos_vface(0), 0.0);
  EXPECT_DOUBLE_EQ(g.cos_vface(g.nlat()), 0.0);
}

TEST(LatLon, ZonalSpacingShrinksTowardPoles) {
  const auto g = LatLonGrid::paper_9layer();
  EXPECT_GT(g.dx_m(45), g.dx_m(80));
  EXPECT_GT(g.dx_m(80), g.dx_m(89));
  EXPECT_GT(g.dx_m(89), 0.0);
}

TEST(LatLon, CellAreasSumToSphere) {
  const auto g = LatLonGrid::paper_9layer();
  double total = 0.0;
  for (int j = 0; j < g.nlat(); ++j) total += g.cell_area_m2(j) * g.nlon();
  const double r = g.planet().radius_m;
  EXPECT_NEAR(total, 4.0 * std::numbers::pi * r * r, 1e-3 * total);
}

TEST(LatLon, FilterBands) {
  const auto g = LatLonGrid::paper_9layer();
  int strong = 0, weak = 0;
  for (int j = 0; j < g.nlat(); ++j) {
    if (g.poleward_of(j, 45.0)) ++strong;
    if (g.poleward_of(j, 60.0)) ++weak;
  }
  // "about one half" and "about one third" of the latitudes.
  EXPECT_EQ(strong, 46);
  EXPECT_EQ(weak, 30);
}

TEST(LatLon, RejectsBadDimensions) {
  EXPECT_THROW(LatLonGrid(2, 10, 1), ConfigError);
  EXPECT_THROW(LatLonGrid(16, 1, 1), ConfigError);
  EXPECT_THROW(LatLonGrid(16, 10, 0), ConfigError);
}

// --- partition properties over a sweep of (n, p) ---------------------------

class PartitionSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PartitionSweep, BlocksTileExactly) {
  const auto [n, p] = GetParam();
  const Partition1D part(n, p);
  int covered = 0;
  for (int b = 0; b < p; ++b) {
    EXPECT_EQ(part.start(b), covered);
    EXPECT_GT(part.size(b), 0);
    covered += part.size(b);
  }
  EXPECT_EQ(covered, n);
}

TEST_P(PartitionSweep, SizesDifferByAtMostOne) {
  const auto [n, p] = GetParam();
  const Partition1D part(n, p);
  int lo = n, hi = 0;
  for (int b = 0; b < p; ++b) {
    lo = std::min(lo, part.size(b));
    hi = std::max(hi, part.size(b));
  }
  EXPECT_LE(hi - lo, 1);
}

TEST_P(PartitionSweep, OwnerIsConsistentWithRanges) {
  const auto [n, p] = GetParam();
  const Partition1D part(n, p);
  for (int g = 0; g < n; ++g) {
    const int b = part.owner(g);
    EXPECT_GE(g, part.start(b));
    EXPECT_LT(g, part.end(b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Values(std::pair{144, 30}, std::pair{144, 18}, std::pair{90, 8},
                      std::pair{90, 14}, std::pair{90, 9}, std::pair{7, 7},
                      std::pair{10, 3}, std::pair{100, 1}, std::pair{5, 4}));

TEST(Decomp2D, PaperMeshes) {
  // The paper's 8 x 30 mesh over the 144 x 90 grid.
  const Decomp2D d(144, 90, 8, 30);
  const auto box = d.box({0, 0});
  EXPECT_EQ(box.ni, 5);  // 144 = 24*5 + 6*4 -> first 24 columns get 5
  EXPECT_EQ(box.nj, 12);  // 90 = 2*12 + 6*11
  const auto owner = d.owner(143, 89);
  EXPECT_EQ(owner.row, 7);
  EXPECT_EQ(owner.col, 29);
}

TEST(Decomp2D, RejectsMoreBlocksThanPoints) {
  EXPECT_THROW(Decomp2D(4, 4, 1, 8), ConfigError);
}

// --- halo exchange ----------------------------------------------------------

class HaloSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HaloSweep, GhostsMatchGlobalField) {
  const auto [rows, cols] = GetParam();
  const int nlon = 12, nlat = 8, nlev = 2;
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(10'000);
  machine.run(rows * cols, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, rows, cols);
    const Decomp2D decomp(nlon, nlat, rows, cols);
    const auto box = decomp.box(mesh.coord());
    Array3D<double> field(box.ni, box.nj, nlev, 1);
    auto value = [&](int gi, int gj, int k) {
      return 1000.0 * k + 10.0 * gj + ((gi + nlon) % nlon);
    };
    for (int k = 0; k < nlev; ++k)
      for (int j = 0; j < box.nj; ++j)
        for (int i = 0; i < box.ni; ++i)
          field(i, j, k) = value(box.i0 + i, box.j0 + j, k);

    exchange_halo(mesh, field);

    for (int k = 0; k < nlev; ++k) {
      for (int j = -1; j <= box.nj; ++j) {
        const int gj = box.j0 + j;
        if (gj < 0 || gj >= nlat) continue;  // polar ghosts: untouched
        for (int i = -1; i <= box.ni; ++i) {
          const int gi = box.i0 + i;  // may wrap
          EXPECT_DOUBLE_EQ(field(i, j, k), value(gi, gj, k))
              << "mesh " << rows << "x" << cols << " at (" << i << "," << j
              << "," << k << ")";
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Meshes, HaloSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 3},
                                           std::pair{2, 1}, std::pair{2, 2},
                                           std::pair{2, 3}, std::pair{4, 2},
                                           std::pair{8, 1}, std::pair{2, 6}));

TEST(Halo, PolarGhostRowsAreLeftUntouched) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(10'000);
  machine.run(1, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 1, 1);
    const Decomp2D decomp(8, 4, 1, 1);
    Array3D<double> field(8, 4, 1, 1);
    field.fill(0.0);
    for (int i = -1; i <= 8; ++i) {
      field(i, -1, 0) = -77.0;
      field(i, 4, 0) = -88.0;
    }
    exchange_halo(mesh, field);
    EXPECT_DOUBLE_EQ(field(0, -1, 0), -77.0);
    EXPECT_DOUBLE_EQ(field(0, 4, 0), -88.0);
  });
}

TEST(Halo, WidthMustBeWithinGhost) {
  Machine machine(MachineProfile::ideal());
  EXPECT_THROW(machine.run(1,
                           [&](RankContext& ctx) {
                             Communicator world(ctx);
                             Mesh2D mesh(world, 1, 1);
                             Array3D<double> f(4, 4, 1, 1);
                             exchange_halo(mesh, f, 2);
                           }),
               ConfigError);
}

}  // namespace
}  // namespace agcm::grid
