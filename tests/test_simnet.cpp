// Tests for the virtual multicomputer: clock arithmetic, transport
// semantics, determinism, and failure injection.
#include <gtest/gtest.h>

#include <cstring>

#include "simnet/machine.hpp"
#include "util/error.hpp"

namespace agcm::simnet {
namespace {

std::span<const std::byte> as_bytes(const std::vector<double>& v) {
  return std::as_bytes(std::span<const double>(v));
}

TEST(MachineProfile, ComputeTimeScalesWithRateAndEfficiency) {
  MachineProfile p = MachineProfile::ideal();  // 1 flop/s
  EXPECT_DOUBLE_EQ(p.compute_time(10.0), 10.0);
  EXPECT_DOUBLE_EQ(p.compute_time(10.0, 0.5), 20.0);
}

TEST(MachineProfile, EfficiencyIsClamped) {
  MachineProfile p = MachineProfile::ideal();
  EXPECT_DOUBLE_EQ(p.compute_time(1.0, 5.0), 1.0);      // clamped to 1
  EXPECT_DOUBLE_EQ(p.compute_time(1.0, 0.0), 1000.0);   // clamped to 1e-3
}

TEST(MachineProfile, TransferTime) {
  MachineProfile p;
  p.msg_latency_sec = 1.0e-3;
  p.link_bytes_per_sec = 1.0e6;
  EXPECT_DOUBLE_EQ(p.transfer_time(1.0e6), 1.0e-3 + 1.0);
}

TEST(MachineProfile, T3dFasterThanParagon) {
  const auto paragon = MachineProfile::intel_paragon();
  const auto t3d = MachineProfile::cray_t3d();
  EXPECT_GT(t3d.flops_per_sec, paragon.flops_per_sec);
  EXPECT_LT(t3d.msg_latency_sec, paragon.msg_latency_sec);
}

TEST(MachineProfile, LoopEfficiencyModel) {
  MachineProfile p;
  p.loop_startup_elems = 8.0;
  EXPECT_DOUBLE_EQ(p.loop_efficiency(8.0), 0.5);
  EXPECT_NEAR(p.loop_efficiency(144.0), 144.0 / 152.0, 1e-12);
  // Monotone increasing toward 1.
  EXPECT_LT(p.loop_efficiency(4.0), p.loop_efficiency(16.0));
  EXPECT_LT(p.loop_efficiency(16.0), 1.0);
  // No startup cost => always 1.
  p.loop_startup_elems = 0.0;
  EXPECT_DOUBLE_EQ(p.loop_efficiency(3.0), 1.0);
}

TEST(MachineProfile, ShortLoopsHurtParagonMoreThanT3d) {
  const auto paragon = MachineProfile::intel_paragon();
  const auto t3d = MachineProfile::cray_t3d();
  EXPECT_LT(paragon.loop_efficiency(5.0), t3d.loop_efficiency(5.0));
}

TEST(VirtualClock, ComputeAdvancesAndAccumulates) {
  const MachineProfile p = MachineProfile::ideal();
  VirtualClock clock(p);
  clock.compute(5.0);
  clock.compute(2.0);
  EXPECT_DOUBLE_EQ(clock.now(), 7.0);
  EXPECT_DOUBLE_EQ(clock.breakdown().compute, 7.0);
  EXPECT_DOUBLE_EQ(clock.breakdown().wait, 0.0);
}

TEST(VirtualClock, ArrivalInFutureRecordsWait) {
  const MachineProfile p = MachineProfile::ideal();
  VirtualClock clock(p);
  clock.compute(1.0);
  clock.apply_arrival(4.0);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);  // zero recv overhead on ideal
  EXPECT_DOUBLE_EQ(clock.breakdown().wait, 3.0);
}

TEST(VirtualClock, ArrivalInPastIsFree) {
  const MachineProfile p = MachineProfile::ideal();
  VirtualClock clock(p);
  clock.compute(10.0);
  clock.apply_arrival(4.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  EXPECT_DOUBLE_EQ(clock.breakdown().wait, 0.0);
}

TEST(VirtualClock, WaitUntil) {
  VirtualClock clock(MachineProfile::ideal());
  clock.wait_until(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
  clock.wait_until(1.0);  // no-op
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(Mailbox, FifoPerChannel) {
  Mailbox box;
  box.push({{std::byte{1}}, 0.0, /*src=*/0, /*tag=*/7});
  box.push({{std::byte{2}}, 0.0, 0, 7});
  EXPECT_EQ(box.pop(0, 7, 1000).payload[0], std::byte{1});
  EXPECT_EQ(box.pop(0, 7, 1000).payload[0], std::byte{2});
}

TEST(Mailbox, ChannelsAreIndependent) {
  Mailbox box;
  box.push({{std::byte{9}}, 0.0, 1, 5});
  box.push({{std::byte{8}}, 0.0, 2, 5});
  EXPECT_EQ(box.pop(2, 5, 1000).payload[0], std::byte{8});
  EXPECT_EQ(box.pop(1, 5, 1000).payload[0], std::byte{9});
}

TEST(Mailbox, TimeoutThrowsCommError) {
  Mailbox box;
  EXPECT_THROW(box.pop(0, 0, 50), CommError);
}

TEST(Machine, RunsAllRanks) {
  Machine machine(MachineProfile::ideal());
  std::vector<int> hits(8, 0);
  machine.run(8, [&](RankContext& ctx) { hits[static_cast<std::size_t>(ctx.rank())] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Machine, PingPongTransfersDataAndTime) {
  MachineProfile p = MachineProfile::ideal();
  p.msg_latency_sec = 2.0;
  Machine machine(p);
  const auto result = machine.run(2, [&](RankContext& ctx) {
    std::vector<double> payload{1.5, 2.5};
    if (ctx.rank() == 0) {
      ctx.clock().compute(5.0);  // rank 0 is busy before sending
      ctx.send_bytes(1, 3, as_bytes(payload));
    } else {
      const auto bytes = ctx.recv_bytes(0, 3);
      ASSERT_EQ(bytes.size(), 2 * sizeof(double));
      double values[2];
      std::memcpy(values, bytes.data(), sizeof(values));
      EXPECT_DOUBLE_EQ(values[0], 1.5);
      EXPECT_DOUBLE_EQ(values[1], 2.5);
    }
  });
  // Receiver time = sender depart (5.0) + latency (2.0) + ~0 serialisation.
  EXPECT_NEAR(result.finish_times[1], 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.breakdowns[1].wait, 7.0);
  EXPECT_EQ(result.total_messages, 1u);
  EXPECT_EQ(result.total_bytes, 2 * sizeof(double));
}

TEST(Machine, VirtualTimeIsDeterministicAcrossRuns) {
  MachineProfile p = MachineProfile::intel_paragon();
  Machine machine(p);
  auto program = [&](RankContext& ctx) {
    // Irregular compute + ring communication; host scheduling varies but
    // virtual time must not.
    ctx.clock().compute(1000.0 * (ctx.rank() + 1));
    const int next = (ctx.rank() + 1) % ctx.nranks();
    const int prev = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
    std::vector<double> data(64, ctx.rank());
    ctx.send_bytes(next, 1, as_bytes(data));
    (void)ctx.recv_bytes(prev, 1);
  };
  const auto r1 = machine.run(5, program);
  const auto r2 = machine.run(5, program);
  for (int r = 0; r < 5; ++r)
    EXPECT_DOUBLE_EQ(r1.finish_times[static_cast<std::size_t>(r)],
                     r2.finish_times[static_cast<std::size_t>(r)]);
}

TEST(Machine, ExceptionInRankPropagates) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(100);
  EXPECT_THROW(machine.run(2,
                           [](RankContext& ctx) {
                             if (ctx.rank() == 0) throw DataError("boom");
                             // rank 1 exits normally
                           }),
               DataError);
}

TEST(Machine, RecvTimeoutSurfacesAsCommError) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(100);
  EXPECT_THROW(
      machine.run(2,
                  [](RankContext& ctx) {
                    if (ctx.rank() == 0) {
                      (void)ctx.recv_bytes(1, 9);  // never sent: deadlock
                    }
                  }),
      CommError);
}

TEST(Machine, SendToInvalidRankThrows) {
  Machine machine(MachineProfile::ideal());
  EXPECT_THROW(machine.run(1,
                           [](RankContext& ctx) {
                             std::byte b{0};
                             ctx.send_bytes(5, 0, {&b, 1});
                           }),
               CommError);
}

TEST(Machine, MakespanIsMaxFinishTime) {
  Machine machine(MachineProfile::ideal());
  const auto result = machine.run(3, [](RankContext& ctx) {
    ctx.clock().compute(static_cast<double>(ctx.rank()) * 10.0);
  });
  EXPECT_DOUBLE_EQ(result.makespan(), 20.0);
}

TEST(Machine, MemoryTrafficUsesBandwidth) {
  MachineProfile p = MachineProfile::ideal();
  p.mem_bytes_per_sec = 100.0;
  Machine machine(p);
  const auto result = machine.run(1, [](RankContext& ctx) {
    ctx.clock().memory_traffic(50.0);
  });
  EXPECT_DOUBLE_EQ(result.finish_times[0], 0.5);
}

}  // namespace
}  // namespace agcm::simnet
