// Tests for the virtual multicomputer: clock arithmetic, transport
// semantics, determinism, failure injection, and the fiber scheduler's
// park/unpark machinery under heavy oversubscription.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "simnet/fiber.hpp"
#include "simnet/machine.hpp"
#include "util/error.hpp"
#include "util/exec_local.hpp"

namespace agcm::simnet {
namespace {

std::span<const std::byte> as_bytes(const std::vector<double>& v) {
  return std::as_bytes(std::span<const double>(v));
}

/// Builds a one-byte test packet (mailbox tests have no Network/pool, so the
/// payload is a self-owning unpooled Buffer).
Packet make_packet(std::byte value, int src, std::int64_t tag) {
  Packet packet;
  packet.payload = Buffer::unpooled(std::vector<std::byte>{value});
  packet.depart_time = 0.0;
  packet.src = src;
  packet.tag = tag;
  return packet;
}

TEST(MachineProfile, ComputeTimeScalesWithRateAndEfficiency) {
  MachineProfile p = MachineProfile::ideal();  // 1 flop/s
  EXPECT_DOUBLE_EQ(p.compute_time(10.0), 10.0);
  EXPECT_DOUBLE_EQ(p.compute_time(10.0, 0.5), 20.0);
}

TEST(MachineProfile, EfficiencyIsClamped) {
  MachineProfile p = MachineProfile::ideal();
  EXPECT_DOUBLE_EQ(p.compute_time(1.0, 5.0), 1.0);      // clamped to 1
  EXPECT_DOUBLE_EQ(p.compute_time(1.0, 0.0), 1000.0);   // clamped to 1e-3
}

TEST(MachineProfile, TransferTime) {
  MachineProfile p;
  p.msg_latency_sec = 1.0e-3;
  p.link_bytes_per_sec = 1.0e6;
  EXPECT_DOUBLE_EQ(p.transfer_time(1.0e6), 1.0e-3 + 1.0);
}

TEST(MachineProfile, T3dFasterThanParagon) {
  const auto paragon = MachineProfile::intel_paragon();
  const auto t3d = MachineProfile::cray_t3d();
  EXPECT_GT(t3d.flops_per_sec, paragon.flops_per_sec);
  EXPECT_LT(t3d.msg_latency_sec, paragon.msg_latency_sec);
}

TEST(MachineProfile, LoopEfficiencyModel) {
  MachineProfile p;
  p.loop_startup_elems = 8.0;
  EXPECT_DOUBLE_EQ(p.loop_efficiency(8.0), 0.5);
  EXPECT_NEAR(p.loop_efficiency(144.0), 144.0 / 152.0, 1e-12);
  // Monotone increasing toward 1.
  EXPECT_LT(p.loop_efficiency(4.0), p.loop_efficiency(16.0));
  EXPECT_LT(p.loop_efficiency(16.0), 1.0);
  // No startup cost => always 1.
  p.loop_startup_elems = 0.0;
  EXPECT_DOUBLE_EQ(p.loop_efficiency(3.0), 1.0);
}

TEST(MachineProfile, ShortLoopsHurtParagonMoreThanT3d) {
  const auto paragon = MachineProfile::intel_paragon();
  const auto t3d = MachineProfile::cray_t3d();
  EXPECT_LT(paragon.loop_efficiency(5.0), t3d.loop_efficiency(5.0));
}

TEST(VirtualClock, ComputeAdvancesAndAccumulates) {
  const MachineProfile p = MachineProfile::ideal();
  VirtualClock clock(p);
  clock.compute(5.0);
  clock.compute(2.0);
  EXPECT_DOUBLE_EQ(clock.now(), 7.0);
  EXPECT_DOUBLE_EQ(clock.breakdown().compute, 7.0);
  EXPECT_DOUBLE_EQ(clock.breakdown().wait, 0.0);
}

TEST(VirtualClock, ArrivalInFutureRecordsWait) {
  const MachineProfile p = MachineProfile::ideal();
  VirtualClock clock(p);
  clock.compute(1.0);
  clock.apply_arrival(4.0);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);  // zero recv overhead on ideal
  EXPECT_DOUBLE_EQ(clock.breakdown().wait, 3.0);
}

TEST(VirtualClock, ArrivalInPastIsFree) {
  const MachineProfile p = MachineProfile::ideal();
  VirtualClock clock(p);
  clock.compute(10.0);
  clock.apply_arrival(4.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  EXPECT_DOUBLE_EQ(clock.breakdown().wait, 0.0);
}

TEST(VirtualClock, WaitUntil) {
  VirtualClock clock(MachineProfile::ideal());
  clock.wait_until(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
  clock.wait_until(1.0);  // no-op
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(Mailbox, FifoPerChannel) {
  Mailbox box;
  box.push(make_packet(std::byte{1}, /*src=*/0, /*tag=*/7));
  box.push(make_packet(std::byte{2}, 0, 7));
  EXPECT_EQ(box.pop(0, 7, 1000).payload[0], std::byte{1});
  EXPECT_EQ(box.pop(0, 7, 1000).payload[0], std::byte{2});
}

TEST(Mailbox, FifoSurvivesInterleavedChannels) {
  // Sharded channels must stay FIFO per (src, tag) even when pushes to other
  // channels interleave arbitrarily.
  Mailbox box;
  for (int i = 0; i < 16; ++i) {
    box.push(make_packet(std::byte(i), 0, 7));
    box.push(make_packet(std::byte(100 + i), 3, 7));
    box.push(make_packet(std::byte(200 + i), 0, 9));
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(box.pop(0, 7, 1000).payload[0], std::byte(i));
    EXPECT_EQ(box.pop(3, 7, 1000).payload[0], std::byte(100 + i));
    EXPECT_EQ(box.pop(0, 9, 1000).payload[0], std::byte(200 + i));
  }
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, ChannelsAreIndependent) {
  Mailbox box;
  box.push(make_packet(std::byte{9}, 1, 5));
  box.push(make_packet(std::byte{8}, 2, 5));
  EXPECT_EQ(box.pop(2, 5, 1000).payload[0], std::byte{8});
  EXPECT_EQ(box.pop(1, 5, 1000).payload[0], std::byte{9});
}

TEST(Mailbox, TimeoutThrowsCommError) {
  Mailbox box;
  EXPECT_THROW(box.pop(0, 0, 50), CommError);
}

TEST(Mailbox, TimeoutErrorListsPendingChannels) {
  // The deadlock diagnostic names what *is* queued, so a tag or source
  // mismatch is visible from the error message alone.
  Mailbox box;
  box.push(make_packet(std::byte{1}, 2, 11));
  box.push(make_packet(std::byte{2}, 2, 11));
  box.push(make_packet(std::byte{3}, 4, 3));
  try {
    box.pop(0, 7, 50);
    FAIL() << "pop should have timed out";
  } catch (const CommError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("src=0 tag=7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pending channels:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(src=2 tag=11 depth=2)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(src=4 tag=3 depth=1)"), std::string::npos) << msg;
  }
}

TEST(Mailbox, TimeoutErrorOnEmptyMailbox) {
  Mailbox box;
  try {
    box.pop(1, 2, 50);
    FAIL() << "pop should have timed out";
  } catch (const CommError& e) {
    EXPECT_NE(std::string(e.what()).find("mailbox empty"), std::string::npos);
  }
}

TEST(Mailbox, PendingChannelsSortedAndCounted) {
  Mailbox box;
  box.push(make_packet(std::byte{0}, 3, 1));
  box.push(make_packet(std::byte{0}, 1, 9));
  box.push(make_packet(std::byte{0}, 1, 2));
  box.push(make_packet(std::byte{0}, 1, 2));
  const auto infos = box.pending_channels();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(infos[0].src, 1);
  EXPECT_EQ(infos[0].tag, 2);
  EXPECT_EQ(infos[0].depth, 2u);
  EXPECT_EQ(infos[1].src, 1);
  EXPECT_EQ(infos[1].tag, 9);
  EXPECT_EQ(infos[2].src, 3);
  EXPECT_EQ(infos[2].tag, 1);
  EXPECT_EQ(box.pending(), 4u);
}

TEST(BufferPool, RecyclesStorageWithCapacityIntact) {
  BufferPool pool;
  const std::byte* first_data = nullptr;
  {
    Buffer b = pool.acquire(256);
    EXPECT_EQ(b.size(), 256u);
    first_data = b.data();
    EXPECT_EQ(pool.outstanding(), 1u);
  }  // released back to the pool here
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.free_count(), 1u);
  Buffer again = pool.acquire(128);  // smaller: must reuse, not allocate
  EXPECT_EQ(again.size(), 128u);
  EXPECT_GE(again.capacity(), 256u);  // growth-only capacity
  EXPECT_EQ(again.data(), first_data);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPool, MoveTransfersOwnership) {
  BufferPool pool;
  Buffer a = pool.acquire(8);
  Buffer b = std::move(a);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(pool.outstanding(), 1u);
  a = std::move(b);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(pool.outstanding(), 1u);
}

TEST(BufferPool, UnpooledBufferOwnsItsStorage) {
  Buffer b = Buffer::unpooled({std::byte{42}, std::byte{43}});
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[1], std::byte{43});
}

TEST(Machine, RunsAllRanks) {
  Machine machine(MachineProfile::ideal());
  std::vector<int> hits(8, 0);
  machine.run(8, [&](RankContext& ctx) { hits[static_cast<std::size_t>(ctx.rank())] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Machine, PingPongTransfersDataAndTime) {
  MachineProfile p = MachineProfile::ideal();
  p.msg_latency_sec = 2.0;
  Machine machine(p);
  const auto result = machine.run(2, [&](RankContext& ctx) {
    std::vector<double> payload{1.5, 2.5};
    if (ctx.rank() == 0) {
      ctx.clock().compute(5.0);  // rank 0 is busy before sending
      ctx.send_bytes(1, 3, as_bytes(payload));
    } else {
      const auto bytes = ctx.recv_bytes(0, 3);
      ASSERT_EQ(bytes.size(), 2 * sizeof(double));
      double values[2];
      std::memcpy(values, bytes.data(), sizeof(values));
      EXPECT_DOUBLE_EQ(values[0], 1.5);
      EXPECT_DOUBLE_EQ(values[1], 2.5);
    }
  });
  // Receiver time = sender depart (5.0) + latency (2.0) + ~0 serialisation.
  EXPECT_NEAR(result.finish_times[1], 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.breakdowns[1].wait, 7.0);
  EXPECT_EQ(result.total_messages, 1u);
  EXPECT_EQ(result.total_bytes, 2 * sizeof(double));
}

TEST(Machine, ZeroCopySendPathMatchesCopyPath) {
  // Packing into an acquired buffer and moving it into the network must be
  // indistinguishable (payload bytes AND virtual time) from the span path.
  MachineProfile p = MachineProfile::ideal();
  p.msg_latency_sec = 2.0;
  Machine machine(p);
  const auto run = [&](bool zero_copy) {
    return machine.run(2, [&, zero_copy](RankContext& ctx) {
      const std::vector<double> payload{3.25, -7.5, 11.0};
      if (ctx.rank() == 0) {
        ctx.clock().compute(5.0);
        if (zero_copy) {
          Buffer buf = ctx.acquire_buffer(payload.size() * sizeof(double));
          std::memcpy(buf.data(), payload.data(), buf.size());
          ctx.send_bytes(1, 3, std::move(buf));
        } else {
          ctx.send_bytes(1, 3, as_bytes(payload));
        }
      } else {
        const Buffer bytes = ctx.recv_bytes(0, 3);
        ASSERT_EQ(bytes.size(), payload.size() * sizeof(double));
        std::vector<double> values(payload.size());
        std::memcpy(values.data(), bytes.data(), bytes.size());
        EXPECT_EQ(values, payload);
      }
    });
  };
  const auto copy = run(false);
  const auto moved = run(true);
  ASSERT_EQ(copy.finish_times.size(), moved.finish_times.size());
  for (std::size_t r = 0; r < copy.finish_times.size(); ++r)
    EXPECT_DOUBLE_EQ(copy.finish_times[r], moved.finish_times[r]);
  EXPECT_EQ(copy.total_bytes, moved.total_bytes);
}

TEST(Machine, PayloadStorageRecyclesThroughPool) {
  Machine machine(MachineProfile::ideal());
  machine.run(2, [](RankContext& ctx) {
    const int peer = 1 - ctx.rank();
    std::vector<double> data(32, 1.0);
    for (int iter = 0; iter < 8; ++iter) {
      ctx.send_bytes(peer, 1, as_bytes(data));
      (void)ctx.recv_bytes(peer, 1);
    }
    // After warm-up every acquire is served from the freelist; with 2 ranks
    // ping-ponging equal sizes the pool needs at most a handful of buffers.
    EXPECT_LE(ctx.network().pool().misses(), 4u);
    EXPECT_GE(ctx.network().pool().reuses(), 8u);
  });
}

TEST(Machine, VirtualTimeIsDeterministicAcrossRuns) {
  MachineProfile p = MachineProfile::intel_paragon();
  Machine machine(p);
  auto program = [&](RankContext& ctx) {
    // Irregular compute + ring communication; host scheduling varies but
    // virtual time must not.
    ctx.clock().compute(1000.0 * (ctx.rank() + 1));
    const int next = (ctx.rank() + 1) % ctx.nranks();
    const int prev = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
    std::vector<double> data(64, ctx.rank());
    ctx.send_bytes(next, 1, as_bytes(data));
    (void)ctx.recv_bytes(prev, 1);
  };
  const auto r1 = machine.run(5, program);
  const auto r2 = machine.run(5, program);
  for (int r = 0; r < 5; ++r)
    EXPECT_DOUBLE_EQ(r1.finish_times[static_cast<std::size_t>(r)],
                     r2.finish_times[static_cast<std::size_t>(r)]);
}

TEST(Machine, ExceptionInRankPropagates) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(100);
  EXPECT_THROW(machine.run(2,
                           [](RankContext& ctx) {
                             if (ctx.rank() == 0) throw DataError("boom");
                             // rank 1 exits normally
                           }),
               DataError);
}

TEST(Machine, RecvTimeoutSurfacesAsCommError) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(100);
  EXPECT_THROW(
      machine.run(2,
                  [](RankContext& ctx) {
                    if (ctx.rank() == 0) {
                      (void)ctx.recv_bytes(1, 9);  // never sent: deadlock
                    }
                  }),
      CommError);
}

TEST(Machine, SendToInvalidRankThrows) {
  Machine machine(MachineProfile::ideal());
  EXPECT_THROW(machine.run(1,
                           [](RankContext& ctx) {
                             std::byte b{0};
                             ctx.send_bytes(5, 0, {&b, 1});
                           }),
               CommError);
}

TEST(Machine, MakespanIsMaxFinishTime) {
  Machine machine(MachineProfile::ideal());
  const auto result = machine.run(3, [](RankContext& ctx) {
    ctx.clock().compute(static_cast<double>(ctx.rank()) * 10.0);
  });
  EXPECT_DOUBLE_EQ(result.makespan(), 20.0);
}

TEST(Machine, MemoryTrafficUsesBandwidth) {
  MachineProfile p = MachineProfile::ideal();
  p.mem_bytes_per_sec = 100.0;
  Machine machine(p);
  const auto result = machine.run(1, [](RankContext& ctx) {
    ctx.clock().memory_traffic(50.0);
  });
  EXPECT_DOUBLE_EQ(result.finish_times[0], 0.5);
}

// ---------------------------------------------------------------------------
// Fiber-scheduler torture tests. These force the M:N machinery through its
// worst cases: far more fibers than workers, parks nested inside hand-rolled
// collectives, channel FIFO under migration, and bit-equality of virtual
// times against the thread-per-rank reference backend.
// ---------------------------------------------------------------------------

/// Hand-rolled barrier on p2p messages (gather-to-0 + broadcast), so the
/// test exercises recv parks nested inside a collective without depending
/// on the comm layer.
void p2p_barrier(RankContext& ctx, std::int64_t tag) {
  const std::byte token{1};
  if (ctx.rank() == 0) {
    for (int r = 1; r < ctx.nranks(); ++r) (void)ctx.recv_bytes(r, tag);
    for (int r = 1; r < ctx.nranks(); ++r) ctx.send_bytes(r, tag, {&token, 1});
  } else {
    ctx.send_bytes(0, tag, {&token, 1});
    (void)ctx.recv_bytes(0, tag);
  }
}

TEST(FiberScheduler, ManyMoreFibersThanWorkers) {
  // 192 rank fibers on 2 workers: every message round parks ~all fibers,
  // so the run queue, the park/unpark handshake and fiber migration across
  // the two workers all churn constantly.
  Machine machine(MachineProfile::ideal());
  machine.set_backend(SimBackend::kFibers);
  machine.set_workers(2);
  const int nranks = 192;
  const int rounds = 5;
  std::vector<int> visits(static_cast<std::size_t>(nranks), 0);
  const auto result = machine.run(nranks, [&](RankContext& ctx) {
    const int next = (ctx.rank() + 1) % ctx.nranks();
    const int prev = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
    std::vector<double> data{static_cast<double>(ctx.rank())};
    for (int round = 0; round < rounds; ++round) {
      ctx.send_bytes(next, round, as_bytes(data));
      const Buffer got = ctx.recv_bytes(prev, round);
      double value = 0.0;
      std::memcpy(&value, got.data(), sizeof(value));
      EXPECT_DOUBLE_EQ(value, static_cast<double>(prev));
    }
    ++visits[static_cast<std::size_t>(ctx.rank())];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
  EXPECT_EQ(result.total_messages,
            static_cast<std::uint64_t>(nranks) * rounds);
}

TEST(FiberScheduler, RecvNestedInsideBarrierPhases) {
  // Data messages cross barrier phases: sent before a barrier, received
  // after it — so data recvs park while peers are already parked inside the
  // barrier's own recvs, and the channel must buffer across both.
  Machine machine(MachineProfile::ideal());
  machine.set_backend(SimBackend::kFibers);
  machine.set_workers(3);
  const int nranks = 64;
  machine.run(nranks, [&](RankContext& ctx) {
    const int partner = ctx.rank() ^ 1;  // pair (even, odd)
    const std::int64_t kData = 1000;
    std::vector<double> payload{ctx.rank() * 1.25};
    if (ctx.rank() % 2 == 1) ctx.send_bytes(partner, kData, as_bytes(payload));
    p2p_barrier(ctx, /*tag=*/1);
    if (ctx.rank() % 2 == 0) {
      const Buffer got = ctx.recv_bytes(partner, kData);
      double value = 0.0;
      std::memcpy(&value, got.data(), sizeof(value));
      EXPECT_DOUBLE_EQ(value, partner * 1.25);
      ctx.send_bytes(partner, kData + 1, as_bytes(payload));
    }
    p2p_barrier(ctx, /*tag=*/2);
    if (ctx.rank() % 2 == 1) {
      const Buffer got = ctx.recv_bytes(partner, kData + 1);
      double value = 0.0;
      std::memcpy(&value, got.data(), sizeof(value));
      EXPECT_DOUBLE_EQ(value, partner * 1.25);
    }
  });
}

TEST(FiberScheduler, FifoPreservedPerChannelUnderOversubscription) {
  // One sender floods two tags toward each receiver while the scheduler
  // bounces the receiving fibers between workers; per-(src, tag) order must
  // still be exactly the send order.
  Machine machine(MachineProfile::ideal());
  machine.set_backend(SimBackend::kFibers);
  machine.set_workers(2);
  const int nranks = 48;  // rank 0 sends, everyone else receives
  const int messages = 32;
  machine.run(nranks, [&](RankContext& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < messages; ++i) {
        for (int dst = 1; dst < ctx.nranks(); ++dst) {
          std::vector<double> a{static_cast<double>(i)};
          std::vector<double> b{static_cast<double>(1000 + i)};
          ctx.send_bytes(dst, 7, as_bytes(a));
          ctx.send_bytes(dst, 9, as_bytes(b));
        }
      }
    } else {
      for (int i = 0; i < messages; ++i) {
        const Buffer a = ctx.recv_bytes(0, 7);
        const Buffer b = ctx.recv_bytes(0, 9);
        double va = 0.0;
        double vb = 0.0;
        std::memcpy(&va, a.data(), sizeof(va));
        std::memcpy(&vb, b.data(), sizeof(vb));
        EXPECT_DOUBLE_EQ(va, static_cast<double>(i));
        EXPECT_DOUBLE_EQ(vb, static_cast<double>(1000 + i));
      }
    }
  });
}

TEST(FiberScheduler, EachRankGetsItsOwnExecSlot) {
  // The per-rank local-storage handle must be distinct per fiber and stable
  // across parks — it is what keeps fft/kernel workspaces rank-private when
  // fibers migrate between workers.
  Machine machine(MachineProfile::ideal());
  machine.set_backend(SimBackend::kFibers);
  machine.set_workers(2);
  const int nranks = 32;
  std::vector<util::ExecSlot*> slots(static_cast<std::size_t>(nranks),
                                     nullptr);
  machine.run(nranks, [&](RankContext& ctx) {
    util::ExecSlot* before = util::ExecSlot::current();
    ASSERT_NE(before, nullptr);
    p2p_barrier(ctx, /*tag=*/5);  // park at least once
    EXPECT_EQ(util::ExecSlot::current(), before);
    slots[static_cast<std::size_t>(ctx.rank())] = before;
  });
  std::sort(slots.begin(), slots.end());
  EXPECT_EQ(std::unique(slots.begin(), slots.end()), slots.end());
  EXPECT_EQ(std::count(slots.begin(), slots.end(), nullptr), 0);
}

TEST(FiberScheduler, VirtualTimesBitIdenticalToThreadBackend) {
  // The determinism gate: seeded pseudo-random compute + permutation
  // exchanges, run under both backends; every per-rank virtual finish time
  // and breakdown component must be bit-identical (EXPECT_DOUBLE_EQ is an
  // exact comparison).
  for (const std::uint64_t seed : {1ULL, 7ULL, 20260808ULL}) {
    const int nranks = 24;
    auto program = [seed, nranks](RankContext& ctx) {
      std::uint64_t offs = seed;  // rank-independent offset stream
      std::uint64_t mine = seed * 1000003ULL +
                           static_cast<std::uint64_t>(ctx.rank());
      const auto next = [](std::uint64_t& s) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
      };
      for (int round = 0; round < 8; ++round) {
        ctx.clock().compute(static_cast<double>(next(mine) % 10000) + 1.0);
        const int off = 1 + static_cast<int>(next(offs) %
                                             static_cast<std::uint64_t>(
                                                 nranks - 1));
        const int dst = (ctx.rank() + off) % nranks;
        const int src = (ctx.rank() + nranks - off) % nranks;
        std::vector<double> data(1 + next(mine) % 64,
                                 static_cast<double>(ctx.rank()));
        ctx.send_bytes(dst, round, as_bytes(data));
        (void)ctx.recv_bytes(src, round);
      }
    };
    Machine fibers(MachineProfile::intel_paragon());
    fibers.set_backend(SimBackend::kFibers);
    fibers.set_workers(2);
    Machine threads(MachineProfile::intel_paragon());
    threads.set_backend(SimBackend::kThreads);
    const auto rf = fibers.run(nranks, program);
    const auto rt = threads.run(nranks, program);
    ASSERT_EQ(rf.finish_times.size(), rt.finish_times.size());
    for (std::size_t r = 0; r < rf.finish_times.size(); ++r) {
      EXPECT_DOUBLE_EQ(rf.finish_times[r], rt.finish_times[r]) << "rank " << r;
      EXPECT_DOUBLE_EQ(rf.breakdowns[r].compute, rt.breakdowns[r].compute);
      EXPECT_DOUBLE_EQ(rf.breakdowns[r].overhead, rt.breakdowns[r].overhead);
      EXPECT_DOUBLE_EQ(rf.breakdowns[r].wait, rt.breakdowns[r].wait);
    }
    EXPECT_EQ(rf.total_messages, rt.total_messages);
    EXPECT_EQ(rf.total_bytes, rt.total_bytes);
  }
}

TEST(FiberScheduler, DeadlockDetectedWithoutWallClockWait) {
  // Quiescence detection: a recv that can never be satisfied must throw as
  // soon as all live fibers are parked — the 100 ms budget below is only
  // for the thread-backend fallback on platforms without fibers.
  Machine machine(MachineProfile::ideal());
  machine.set_backend(SimBackend::kFibers);
  machine.set_recv_timeout_ms(100);
  try {
    machine.run(3, [](RankContext& ctx) {
      if (ctx.rank() == 0) (void)ctx.recv_bytes(1, 9);  // never sent
    });
    FAIL() << "deadlocked run should throw";
  } catch (const CommError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("src=1 tag=9"), std::string::npos) << msg;
  }
}

TEST(FiberScheduler, ThreadBackendStillSelectable) {
  // The fallback backend stays first-class: explicit selection must run the
  // same program with the same results.
  Machine machine(MachineProfile::ideal());
  machine.set_backend(SimBackend::kThreads);
  const auto result = machine.run(4, [](RankContext& ctx) {
    const int next = (ctx.rank() + 1) % ctx.nranks();
    const int prev = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
    std::vector<double> data{1.0};
    ctx.send_bytes(next, 1, as_bytes(data));
    (void)ctx.recv_bytes(prev, 1);
  });
  EXPECT_EQ(result.total_messages, 4u);
}

}  // namespace
}  // namespace agcm::simnet
