// Tests for the typed communicator: point-to-point semantics, every
// collective against its sequential definition, sub-communicators, and the
// 2-D process mesh. Collectives are swept over rank counts (including
// non-powers of two, which exercise the binomial-tree edge cases).
#include <gtest/gtest.h>

#include <numeric>

#include "comm/communicator.hpp"
#include "comm/mesh2d.hpp"
#include "comm/packed.hpp"
#include "simnet/machine.hpp"
#include "util/error.hpp"

namespace agcm::comm {
namespace {

using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

Machine make_machine() {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(10'000);
  return machine;
}

TEST(Communicator, SendRecvTyped) {
  auto machine = make_machine();
  machine.run(2, [](RankContext& ctx) {
    Communicator comm(ctx);
    if (comm.rank() == 0) {
      const std::vector<int> data{1, 2, 3};
      comm.send<int>(1, 5, data);
    } else {
      std::vector<int> data(3);
      comm.recv<int>(0, 5, data);
      EXPECT_EQ(data, (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(Communicator, RecvSizeMismatchThrows) {
  auto machine = make_machine();
  EXPECT_THROW(machine.run(2,
                           [](RankContext& ctx) {
                             Communicator comm(ctx);
                             if (comm.rank() == 0) {
                               const std::vector<int> data{1, 2, 3};
                               comm.send<int>(1, 5, data);
                             } else {
                               std::vector<int> data(5);  // wrong size
                               comm.recv<int>(0, 5, data);
                             }
                           }),
               CommError);
}

TEST(Communicator, RecvAnySize) {
  auto machine = make_machine();
  machine.run(2, [](RankContext& ctx) {
    Communicator comm(ctx);
    if (comm.rank() == 0) {
      const std::vector<double> data{4.0, 5.0};
      comm.send<double>(1, 2, data);
    } else {
      const auto data = comm.recv_any_size<double>(0, 2);
      EXPECT_EQ(data.size(), 2u);
      EXPECT_DOUBLE_EQ(data[1], 5.0);
    }
  });
}

TEST(Communicator, SendValueRecvValue) {
  auto machine = make_machine();
  machine.run(2, [](RankContext& ctx) {
    Communicator comm(ctx);
    if (comm.rank() == 0) comm.send_value<int>(1, 1, 42);
    else EXPECT_EQ(comm.recv_value<int>(0, 1), 42);
  });
}

TEST(Communicator, TagOutOfRangeThrows) {
  auto machine = make_machine();
  EXPECT_THROW(machine.run(1,
                           [](RankContext& ctx) {
                             Communicator comm(ctx);
                             comm.send_value<int>(0, -1, 0);
                           }),
               CommError);
}

TEST(Communicator, InvalidRankThrows) {
  auto machine = make_machine();
  EXPECT_THROW(machine.run(1,
                           [](RankContext& ctx) {
                             Communicator comm(ctx);
                             comm.send_value<int>(3, 0, 0);
                           }),
               CommError);
}

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BroadcastReachesEveryRank) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    for (int root = 0; root < std::min(p, 3); ++root) {
      std::vector<double> data(5, comm.rank() == root ? 3.25 : 0.0);
      comm.broadcast<double>(root, data);
      for (double v : data) EXPECT_DOUBLE_EQ(v, 3.25);
    }
  });
}

TEST_P(CollectiveSweep, ReduceSumMatchesClosedForm) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const std::vector<double> mine{static_cast<double>(comm.rank() + 1)};
    std::vector<double> out{0.0};
    comm.reduce<double>(0, mine, out, [](double a, double b) { return a + b; });
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(out[0], p * (p + 1) / 2.0);
    }
  });
}

TEST_P(CollectiveSweep, AllreduceSumAndMax) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(1.0), static_cast<double>(p));
    EXPECT_DOUBLE_EQ(comm.allreduce_max(static_cast<double>(comm.rank())),
                     static_cast<double>(p - 1));
  });
}

TEST_P(CollectiveSweep, GatherScatterRoundTrip) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    // Uneven counts: rank r contributes r+1 values.
    std::vector<int> counts(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) counts[static_cast<std::size_t>(r)] = r + 1;
    std::vector<double> mine(static_cast<std::size_t>(comm.rank() + 1),
                             100.0 + comm.rank());
    const auto all = comm.gatherv<double>(0, mine, counts);
    if (comm.rank() == 0) {
      ASSERT_EQ(static_cast<int>(all.size()), p * (p + 1) / 2);
      std::size_t pos = 0;
      for (int r = 0; r < p; ++r)
        for (int c = 0; c <= r; ++c) EXPECT_DOUBLE_EQ(all[pos++], 100.0 + r);
    }
    const auto back = comm.scatterv<double>(0, all, counts);
    ASSERT_EQ(back.size(), mine.size());
    for (std::size_t i = 0; i < back.size(); ++i)
      EXPECT_DOUBLE_EQ(back[i], mine[i]);
  });
}

TEST_P(CollectiveSweep, AllgathervEveryoneSeesEverything) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const std::vector<int> ones(static_cast<std::size_t>(p), 1);
    const std::vector<double> mine{static_cast<double>(comm.rank()) * 2.0};
    const auto all = comm.allgatherv<double>(mine, ones);
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int r = 0; r < p; ++r)
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], 2.0 * r);
  });
}

TEST_P(CollectiveSweep, AlltoallvPersonalisedExchange) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    // Rank r sends one value 1000*r + d to every destination d.
    std::vector<int> counts(static_cast<std::size_t>(p), 1);
    std::vector<double> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      send[static_cast<std::size_t>(d)] = 1000.0 * comm.rank() + d;
    const auto recv = comm.alltoallv<double>(send, counts, counts);
    ASSERT_EQ(static_cast<int>(recv.size()), p);
    for (int s = 0; s < p; ++s)
      EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(s)],
                       1000.0 * s + comm.rank());
  });
}

TEST_P(CollectiveSweep, AlltoallvWithZeroCounts) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    // Only even ranks send, only to rank 0.
    std::vector<int> send_counts(static_cast<std::size_t>(p), 0);
    std::vector<double> send;
    if (comm.rank() % 2 == 0) {
      send_counts[0] = 2;
      send = {1.0 * comm.rank(), 1.0 * comm.rank() + 0.5};
    }
    std::vector<int> recv_counts(static_cast<std::size_t>(p), 0);
    if (comm.rank() == 0)
      for (int r = 0; r < p; r += 2) recv_counts[static_cast<std::size_t>(r)] = 2;
    const auto recv = comm.alltoallv<double>(send, send_counts, recv_counts);
    if (comm.rank() == 0) {
      std::size_t pos = 0;
      for (int r = 0; r < p; r += 2) {
        EXPECT_DOUBLE_EQ(recv[pos++], 1.0 * r);
        EXPECT_DOUBLE_EQ(recv[pos++], 1.0 * r + 0.5);
      }
      EXPECT_EQ(pos, recv.size());
    } else {
      EXPECT_TRUE(recv.empty());
    }
  });
}

TEST_P(CollectiveSweep, BarrierAlignsVirtualClocks) {
  const int p = GetParam();
  auto machine = make_machine();
  const auto result = machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    ctx.clock().compute(100.0 * (comm.rank() + 1));
    comm.barrier();
    EXPECT_GE(ctx.clock().now(), 100.0 * p);
  });
  (void)result;
}

TEST_P(CollectiveSweep, AllgatherFixedSize) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const std::vector<double> mine{10.0 * comm.rank(), 10.0 * comm.rank() + 1};
    const auto all = comm.allgather<double>(mine);
    ASSERT_EQ(static_cast<int>(all.size()), 2 * p);
    for (int r = 0; r < p; ++r) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r)], 10.0 * r);
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r + 1)], 10.0 * r + 1);
    }
  });
}

TEST_P(CollectiveSweep, AlltoallFixedBlock) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    std::vector<int> send(static_cast<std::size_t>(2 * p));
    for (int d = 0; d < p; ++d) {
      send[static_cast<std::size_t>(2 * d)] = 100 * comm.rank() + d;
      send[static_cast<std::size_t>(2 * d + 1)] = -(100 * comm.rank() + d);
    }
    const auto recv = comm.alltoall<int>(send, 2);
    ASSERT_EQ(static_cast<int>(recv.size()), 2 * p);
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(recv[static_cast<std::size_t>(2 * s)], 100 * s + comm.rank());
      EXPECT_EQ(recv[static_cast<std::size_t>(2 * s + 1)],
                -(100 * s + comm.rank()));
    }
  });
}

TEST_P(CollectiveSweep, InclusiveScanMatchesPrefixSums) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const std::vector<double> mine{static_cast<double>(comm.rank() + 1), 1.0};
    std::vector<double> out(2);
    comm.scan<double>(mine, out, [](double a, double b) { return a + b; });
    const int r = comm.rank();
    EXPECT_DOUBLE_EQ(out[0], (r + 1) * (r + 2) / 2.0);
    EXPECT_DOUBLE_EQ(out[1], static_cast<double>(r + 1));
  });
}

TEST_P(CollectiveSweep, ReduceScatterBlock) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    // Rank r contributes value (r+1) in every slot.
    std::vector<double> in(static_cast<std::size_t>(3 * p),
                           static_cast<double>(comm.rank() + 1));
    const auto mine = comm.reduce_scatter_block<double>(
        in, 3, [](double a, double b) { return a + b; });
    ASSERT_EQ(mine.size(), 3u);
    for (double v : mine) EXPECT_DOUBLE_EQ(v, p * (p + 1) / 2.0);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

TEST(Split, GroupsByColorOrdersByKey) {
  auto machine = make_machine();
  machine.run(6, [](RankContext& ctx) {
    Communicator world(ctx);
    // Two groups: even and odd ranks; key reverses the order.
    const int color = world.rank() % 2;
    const Communicator sub = world.split(color, -world.rank());
    EXPECT_EQ(sub.size(), 3);
    // Highest old rank gets new rank 0 (smallest key).
    const int expected_new_rank = (5 - world.rank()) / 2 - 0;
    EXPECT_EQ(sub.rank(), expected_new_rank);
    // Traffic stays inside the group.
    const double total = sub.allreduce_sum(static_cast<double>(world.rank()));
    EXPECT_DOUBLE_EQ(total, color == 0 ? 0.0 + 2.0 + 4.0 : 1.0 + 3.0 + 5.0);
  });
}

TEST(Split, NestedSplitWorks) {
  auto machine = make_machine();
  machine.run(4, [](RankContext& ctx) {
    Communicator world(ctx);
    const Communicator half = world.split(world.rank() / 2, world.rank());
    const Communicator solo = half.split(half.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_DOUBLE_EQ(solo.allreduce_sum(7.0), 7.0);
  });
}

TEST(Mesh2D, CoordinatesAndNeighbours) {
  auto machine = make_machine();
  machine.run(6, [](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 2, 3);
    const auto c = mesh.coord();
    EXPECT_EQ(mesh.rank_of(c), world.rank());
    EXPECT_EQ(c.row, world.rank() / 3);
    EXPECT_EQ(c.col, world.rank() % 3);
    // Longitude wraps.
    EXPECT_EQ(mesh.east(), c.row * 3 + (c.col + 1) % 3);
    EXPECT_EQ(mesh.west(), c.row * 3 + (c.col + 2) % 3);
    // Latitude does not.
    if (c.row == 1) EXPECT_FALSE(mesh.north().has_value());
    else EXPECT_EQ(*mesh.north(), world.rank() + 3);
    if (c.row == 0) EXPECT_FALSE(mesh.south().has_value());
    else EXPECT_EQ(*mesh.south(), world.rank() - 3);
  });
}

TEST(Mesh2D, RowAndColCommunicators) {
  auto machine = make_machine();
  machine.run(6, [](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 2, 3);
    EXPECT_EQ(mesh.row_comm().size(), 3);
    EXPECT_EQ(mesh.col_comm().size(), 2);
    EXPECT_EQ(mesh.row_comm().rank(), mesh.coord().col);
    EXPECT_EQ(mesh.col_comm().rank(), mesh.coord().row);
    // Row sums collect the ranks of one mesh row only.
    const double row_sum =
        mesh.row_comm().allreduce_sum(static_cast<double>(world.rank()));
    const double expected =
        mesh.coord().row == 0 ? 0.0 + 1.0 + 2.0 : 3.0 + 4.0 + 5.0;
    EXPECT_DOUBLE_EQ(row_sum, expected);
  });
}

TEST(Mesh2D, SizeMismatchThrows) {
  auto machine = make_machine();
  EXPECT_THROW(machine.run(5,
                           [](RankContext& ctx) {
                             Communicator world(ctx);
                             Mesh2D mesh(world, 2, 3);
                           }),
               ConfigError);
}

// --- zero-copy pooled transport APIs ----------------------------------------

TEST(ZeroCopy, PackerSendRecvViewRoundTrip) {
  auto machine = make_machine();
  machine.run(2, [](RankContext& ctx) {
    Communicator comm(ctx);
    if (comm.rank() == 0) {
      PackedWriter w = comm.packer(4 * sizeof(double));
      auto slots = w.append<double>(2);
      slots[0] = 1.5;
      slots[1] = 2.5;
      const std::vector<double> tail{3.5, 4.5};
      w.write<double>(tail);
      comm.send_packed(1, 9, std::move(w));
    } else {
      const TypedView<double> view = comm.recv_view<double>(0, 9);
      ASSERT_EQ(view.size(), 4u);
      EXPECT_DOUBLE_EQ(view[0], 1.5);
      EXPECT_DOUBLE_EQ(view[3], 4.5);
      // The span conversion stays valid while the view owns the payload.
      std::span<const double> s = view;
      EXPECT_DOUBLE_EQ(s[2], 3.5);
    }
  });
}

TEST(ZeroCopy, SendBufferRecvPackedSegments) {
  auto machine = make_machine();
  machine.run(2, [](RankContext& ctx) {
    Communicator comm(ctx);
    if (comm.rank() == 0) {
      simnet::Buffer buf = comm.acquire(6 * sizeof(double));
      auto* d = reinterpret_cast<double*>(buf.data());
      for (int i = 0; i < 6; ++i) d[i] = 10.0 + i;
      comm.send_buffer(1, 3, std::move(buf));
    } else {
      PackedReader r = comm.recv_packed(0, 3);
      const auto head = r.view<double>(2);
      EXPECT_DOUBLE_EQ(head[1], 11.0);
      std::vector<double> tail(4);
      r.read<double>(tail);
      EXPECT_DOUBLE_EQ(tail[3], 15.0);
      EXPECT_EQ(r.remaining_bytes(), 0u);
    }
  });
}

TEST(ZeroCopy, InteroperatesWithTypedRecv) {
  // A buffer sent through the zero-copy path is a normal typed message on
  // the wire: the receiver may use the classic recv<T>() and vice versa.
  auto machine = make_machine();
  machine.run(2, [](RankContext& ctx) {
    Communicator comm(ctx);
    if (comm.rank() == 0) {
      PackedWriter w = comm.packer(3 * sizeof(int));
      const std::vector<int> vals{7, 8, 9};
      w.write<int>(vals);
      comm.send_packed(1, 4, std::move(w));
      comm.send<int>(1, 5, vals);
    } else {
      std::vector<int> a(3);
      comm.recv<int>(0, 4, a);
      EXPECT_EQ(a, (std::vector<int>{7, 8, 9}));
      const auto b = comm.recv_view<int>(0, 5);
      EXPECT_EQ(b[2], 9);
    }
  });
}

TEST(ZeroCopy, WriterOverflowThrows) {
  PackedWriter w(simnet::Buffer::unpooled(std::vector<std::byte>(8)));
  (void)w.append<double>(1);
  EXPECT_THROW(w.append<double>(1), CommError);
}

TEST(ZeroCopy, WriterTakeBeforeFullThrows) {
  PackedWriter w(simnet::Buffer::unpooled(std::vector<std::byte>(16)));
  (void)w.append<double>(1);
  EXPECT_THROW(w.take(), CommError);
}

TEST(ZeroCopy, ReaderUnderflowThrows) {
  PackedReader r(simnet::Buffer::unpooled(std::vector<std::byte>(8)));
  (void)r.view<double>(1);
  EXPECT_THROW(r.view<double>(1), CommError);
}

TEST(ZeroCopy, RecvViewSizeMismatchThrows) {
  auto machine = make_machine();
  EXPECT_THROW(machine.run(2,
                           [](RankContext& ctx) {
                             Communicator comm(ctx);
                             if (comm.rank() == 0) {
                               const std::vector<std::int32_t> d{1, 2, 3};
                               comm.send<std::int32_t>(1, 1, d);
                             } else {
                               // 12 bytes is not a whole number of doubles.
                               comm.recv_view<double>(0, 1);
                             }
                           }),
               CommError);
}

TEST_P(CollectiveSweep, AlltoallvPackedMatchesAlltoallv) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    // Rank r sends r+1 values to destination d (uneven block sizes with a
    // non-empty self block).
    const auto mine = static_cast<std::size_t>(comm.rank() + 1);
    std::vector<int> send_counts(static_cast<std::size_t>(p),
                                 static_cast<int>(mine));
    std::vector<int> recv_counts(static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) recv_counts[static_cast<std::size_t>(s)] = s + 1;
    std::vector<double> send(mine * static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      for (std::size_t x = 0; x < mine; ++x)
        send[static_cast<std::size_t>(d) * mine + x] =
            1000.0 * comm.rank() + 10.0 * d + static_cast<double>(x);
    const auto reference = comm.alltoallv<double>(send, send_counts,
                                                  recv_counts);

    std::vector<std::size_t> send_bytes(static_cast<std::size_t>(p)),
        recv_bytes(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      send_bytes[static_cast<std::size_t>(r)] = mine * sizeof(double);
      recv_bytes[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(r + 1) * sizeof(double);
    }
    std::vector<double> packed(reference.size());
    std::vector<std::size_t> offsets(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r < p; ++r)
      offsets[static_cast<std::size_t>(r) + 1] =
          offsets[static_cast<std::size_t>(r)] + static_cast<std::size_t>(r + 1);
    comm.alltoallv_packed(
        send_bytes, recv_bytes,
        [&](int dst, PackedWriter& w) {
          w.write<double>(std::span<const double>(send).subspan(
              static_cast<std::size_t>(dst) * mine, mine));
        },
        [&](int src, PackedReader& r) {
          r.read<double>(std::span<double>(packed).subspan(
              offsets[static_cast<std::size_t>(src)],
              static_cast<std::size_t>(src + 1)));
        });
    ASSERT_EQ(packed.size(), reference.size());
    for (std::size_t x = 0; x < packed.size(); ++x)
      EXPECT_DOUBLE_EQ(packed[x], reference[x]) << "at " << x;
  });
}

TEST_P(CollectiveSweep, AlltoallvPackedSkipsZeroBlocks) {
  const int p = GetParam();
  auto machine = make_machine();
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    // Only rank 0 receives, only from odd ranks (zero self block for all).
    std::vector<std::size_t> send_bytes(static_cast<std::size_t>(p), 0),
        recv_bytes(static_cast<std::size_t>(p), 0);
    if (comm.rank() % 2 == 1) send_bytes[0] = sizeof(double);
    if (comm.rank() == 0)
      for (int r = 1; r < p; r += 2)
        recv_bytes[static_cast<std::size_t>(r)] = sizeof(double);
    double got_sum = 0.0;
    int unpack_calls = 0;
    comm.alltoallv_packed(
        send_bytes, recv_bytes,
        [&](int, PackedWriter& w) {
          const double v = static_cast<double>(comm.rank());
          w.write<double>(std::span<const double>(&v, 1));
        },
        [&](int src, PackedReader& r) {
          ++unpack_calls;
          got_sum += r.view<double>(1)[0];
          EXPECT_EQ(src % 2, 1);
        });
    if (comm.rank() == 0) {
      EXPECT_EQ(unpack_calls, (p - 1 + 1) / 2);
      double expect_sum = 0.0;
      for (int r = 1; r < p; r += 2) expect_sum += static_cast<double>(r);
      EXPECT_DOUBLE_EQ(got_sum, expect_sum);
    } else {
      EXPECT_EQ(unpack_calls, 0);
    }
  });
}

TEST(Comm, MessageCostFlowsThroughCollectives) {
  simnet::MachineProfile p = simnet::MachineProfile::ideal();
  p.msg_latency_sec = 1.0;
  Machine machine(p);
  machine.set_recv_timeout_ms(10'000);
  const auto result = machine.run(4, [](RankContext& ctx) {
    Communicator comm(ctx);
    std::vector<double> data(1, 0.0);
    comm.broadcast<double>(0, data);
  });
  // Binomial broadcast over 4 ranks: the deepest leaf is 2 hops away.
  EXPECT_GE(result.makespan(), 2.0);
  EXPECT_LT(result.makespan(), 3.0);
  EXPECT_EQ(result.total_messages, 3u);
}

}  // namespace
}  // namespace agcm::comm
