// Tests for the partitioned overlap-save streaming convolution backend
// (src/filter/partition.hpp, docs/filter.md): plan geometry, equivalence
// against direct circular convolution at deliberately awkward shapes
// (odd/prime periods, kernels longer than the circle, kernels shorter than
// one block, periods not divisible by the block, per-latitude varying
// kernel lengths) with explicit ulp envelopes, the two-for-one pair path,
// the FilterBank cache, the batched driver's pairing schedule, and
// bitwise agreement between SIMD tiers on the contracted MAC path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "filter/bank.hpp"
#include "filter/partition.hpp"
#include "filter/serial.hpp"
#include "grid/latlon.hpp"
#include "kernels/simd/dispatch.hpp"
#include "util/rng.hpp"

namespace agcm::filter {
namespace {

using grid::LatLonGrid;

// The equivalence envelope, in units of one ulp of the reference line's
// max magnitude. The streaming engine takes a different summation route
// (block FFTs + frequency-domain MACs) than the direct O(nL) sum, so the
// envelope covers the accumulated rounding of both routes; 4096 ulps is
// ~1e-12 relative — far below any physical tolerance, tight enough to
// catch any indexing or windowing defect outright.
constexpr double kUlpEnvelope = 4096.0;

double max_abs(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

/// |a - b| measured in ulps of `scale` (the reference line's magnitude).
double ulp_diff(double a, double b, double scale) {
  const double ulp =
      std::nextafter(scale, std::numeric_limits<double>::infinity()) - scale;
  return std::abs(a - b) / ulp;
}

std::vector<double> random_line(agcm::Rng& rng, int n) {
  std::vector<double> line(static_cast<std::size_t>(n));
  for (double& x : line) x = rng.uniform(-1.0, 1.0);
  return line;
}

std::vector<double> random_kernel(agcm::Rng& rng, int taps) {
  std::vector<double> kernel(static_cast<std::size_t>(taps));
  for (double& x : kernel) x = rng.uniform(-0.5, 0.5);
  return kernel;
}

/// Runs one (period, kernel_len, forced block) case and returns the max
/// ulp deviation of the streaming engine from the direct reference.
double run_case(std::uint64_t seed, int n, int taps, int block) {
  agcm::Rng rng(seed);
  std::vector<double> kernel = random_kernel(rng, taps);
  std::vector<double> line = random_line(rng, n);
  std::vector<double> reference = line;
  convolve_circular_direct(kernel, reference);

  const PartitionedKernel pk(kernel, n, block);
  filter_line_partition(pk, line);

  const double scale = std::max(1.0, max_abs(reference));
  double worst = 0.0;
  for (int i = 0; i < n; ++i) {
    worst = std::max(worst, ulp_diff(line[static_cast<std::size_t>(i)],
                                     reference[static_cast<std::size_t>(i)],
                                     scale));
  }
  return worst;
}

TEST(PartitionPlan, GeometryInvariants) {
  for (int n : {5, 48, 97, 144, 576, 2048}) {
    for (int taps : {1, 7, 48, 300, 576}) {
      const PartitionPlan plan = PartitionPlan::make(n, taps);
      EXPECT_EQ(plan.period, n);
      EXPECT_EQ(plan.kernel_len, taps);
      EXPECT_GE(plan.block, PartitionPlan::kMinBlock);
      EXPECT_LE(plan.block, PartitionPlan::kMaxBlock);
      // Auto-selected blocks are 3-smooth (2^i * 3^j): strip the factors
      // and expect nothing left.
      int stripped = plan.block;
      while (stripped % 2 == 0) stripped /= 2;
      while (stripped % 3 == 0) stripped /= 3;
      EXPECT_EQ(stripped, 1) << "block " << plan.block;
      EXPECT_EQ(plan.fft_size, 2 * plan.block);
      EXPECT_EQ(plan.nparts, (taps + plan.block - 1) / plan.block);
      EXPECT_EQ(plan.nblocks, (n + plan.block - 1) / plan.block);
      // Partitions cover every tap; blocks cover every output sample.
      EXPECT_GE(plan.nparts * plan.block, taps);
      EXPECT_GE(plan.nblocks * plan.block, n);
    }
  }
}

TEST(PartitionPlan, ForcedBlockIsRespected) {
  const PartitionPlan plan = PartitionPlan::make(100, 30, 12);
  EXPECT_EQ(plan.block, 12);
  EXPECT_EQ(plan.fft_size, 24);
  EXPECT_EQ(plan.nparts, 3);   // ceil(30 / 12)
  EXPECT_EQ(plan.nblocks, 9);  // ceil(100 / 12)
}

TEST(PartitionPlan, SelectionMinimisesTheModel) {
  for (int n : {96, 144, 288, 576, 1152}) {
    const int chosen = PartitionPlan::select_block(n, n);
    const double chosen_cost = PartitionPlan::model_flops(n, n, chosen);
    // Candidates are capped at period / kMinHops (the streaming-latency
    // contract), so the scan below mirrors the selector's own grid.
    const int cap = std::min(PartitionPlan::kMaxBlock,
                             std::max(PartitionPlan::kMinBlock,
                                      n / PartitionPlan::kMinHops));
    EXPECT_LE(chosen, cap) << "n=" << n;
    for (int b3 = 1; b3 <= cap; b3 *= 3) {
      for (int b = b3; b <= cap; b *= 2) {
        if (b < PartitionPlan::kMinBlock) continue;
        EXPECT_LE(chosen_cost, PartitionPlan::model_flops(n, n, b))
            << "n=" << n << " candidate B=" << b;
      }
    }
  }
}

TEST(PartitionPlan, ModelCrossoverAgainstDirectConvolution) {
  // The backend's reason to exist — and its honest limit. At the filter's
  // own shape (L = n) the partitioned model undercuts the O(n^2) direct-
  // convolution accounting only beyond the crossover, which the model
  // places between nlon = 192 and nlon = 288 (docs/filter.md): at the
  // paper's own resolutions direct convolution stays cheaper, which is
  // why the paper never needed this backend.
  for (int n : {48, 96, 144, 192}) {
    const PartitionPlan plan = PartitionPlan::make(n, n);
    EXPECT_GT(plan.flops(), convolution_filter_flops(n)) << "n=" << n;
  }
  for (int n : {288, 576, 1152, 2304}) {
    const PartitionPlan plan = PartitionPlan::make(n, n);
    EXPECT_LT(plan.flops(), convolution_filter_flops(n)) << "n=" << n;
  }
  // The bench gate's headline cell: >= 1.5x at nlon 576 already in the
  // model (the host measurement gates the real thing).
  EXPECT_GT(convolution_filter_flops(576) /
                PartitionPlan::make(576, 576).flops(),
            1.5);
}

TEST(Equivalence, AwkwardShapeSweep) {
  struct Case {
    int n;      // period (odd, prime, and composite ones)
    int taps;   // kernel length (shorter and longer than the period)
    int block;  // forced block (0 = auto); exercises n % B in 1..B-1
  };
  const Case cases[] = {
      {5, 3, 0},      // tiny, n < kMinBlock
      {7, 7, 0},      // prime period == taps
      {17, 40, 0},    // taps > 2n: kernel wraps the circle twice
      {31, 8, 16},    // L < B, prime period, n % B = 15
      {33, 20, 16},   // n % B = 1
      {47, 20, 16},   // n % B = 15
      {48, 48, 16},   // n % B = 0 (exact blocks)
      {97, 97, 0},    // prime, auto block
      {144, 144, 0},  // the paper's nlon, full-length kernel
      {144, 300, 0},  // kernel twice the circle
      {149, 149, 0},  // prime near the paper's nlon
      {144, 144, 36}, // non-power-of-two forced block
  };
  double worst = 0.0;
  for (const Case& c : cases) {
    const double ulps =
        run_case(0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(
                                             c.n * 1000003 + c.taps * 101 +
                                             c.block),
                 c.n, c.taps, c.block);
    EXPECT_LT(ulps, kUlpEnvelope)
        << "n=" << c.n << " taps=" << c.taps << " block=" << c.block;
    worst = std::max(worst, ulps);
  }
  // The envelope should not be anywhere near saturated on healthy code.
  EXPECT_LT(worst, kUlpEnvelope);
}

TEST(Equivalence, EveryResidueOfPeriodModBlock) {
  // n % B walks 1..B-1 (plus 0) for a fixed small block: every partial
  // final hop length is exercised.
  const int block = 16;
  for (int n = block; n <= 2 * block; ++n) {
    const double ulps = run_case(1234u + static_cast<std::uint64_t>(n), n,
                                 /*taps=*/20, block);
    EXPECT_LT(ulps, kUlpEnvelope) << "n=" << n << " (n % B = " << n % block
                                  << ")";
  }
}

TEST(Equivalence, PerLatitudeVaryingKernelLength) {
  // Rows of one grid can carry different effective response widths; the
  // engine must hold for a different kernel length on every line.
  const int n = 60;
  agcm::Rng rng(77);
  for (int taps : {1, 7, 19, 60, 95, 120}) {
    std::vector<double> kernel = random_kernel(rng, taps);
    std::vector<double> line = random_line(rng, n);
    std::vector<double> reference = line;
    convolve_circular_direct(kernel, reference);
    const PartitionedKernel pk(kernel, n);
    filter_line_partition(pk, line);
    const double scale = std::max(1.0, max_abs(reference));
    for (int i = 0; i < n; ++i) {
      EXPECT_LT(ulp_diff(line[static_cast<std::size_t>(i)],
                         reference[static_cast<std::size_t>(i)], scale),
                kUlpEnvelope)
          << "taps=" << taps << " i=" << i;
    }
  }
}

TEST(Pair, MatchesSingleRunsWithinEnvelope) {
  const int n = 90;
  agcm::Rng rng(5);
  std::vector<double> kernel = random_kernel(rng, n);
  std::vector<double> a = random_line(rng, n);
  std::vector<double> b = random_line(rng, n);
  std::vector<double> a_single = a, b_single = b;

  const PartitionedKernel pk(kernel, n);
  filter_line_partition(pk, a_single);
  filter_line_partition(pk, b_single);
  filter_line_pair_partition(pk, a, b);

  const double scale =
      std::max(1.0, std::max(max_abs(a_single), max_abs(b_single)));
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    EXPECT_LT(ulp_diff(a[ui], a_single[ui], scale), kUlpEnvelope) << i;
    EXPECT_LT(ulp_diff(b[ui], b_single[ui], scale), kUlpEnvelope) << i;
  }
}

TEST(Pair, RerunIsBitwiseIdentical) {
  const int n = 96;
  agcm::Rng rng(6);
  std::vector<double> kernel = random_kernel(rng, n);
  const std::vector<double> a0 = random_line(rng, n);
  const std::vector<double> b0 = random_line(rng, n);
  const PartitionedKernel pk(kernel, n);

  std::vector<double> a1 = a0, b1 = b0, a2 = a0, b2 = b0;
  filter_line_pair_partition(pk, a1, b1);
  filter_line_pair_partition(pk, a2, b2);
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    EXPECT_EQ(a1[ui], a2[ui]);
    EXPECT_EQ(b1[ui], b2[ui]);
  }
}

TEST(Bank, PartitionMatchesKernelConvolution) {
  const LatLonGrid grid(48, 24, 2);
  const FilterBank bank(grid, {{"s", FilterKind::kStrong},
                               {"w", FilterKind::kWeak}});
  agcm::Rng rng(9);
  for (int v = 0; v < bank.nvars(); ++v) {
    for (int j : bank.rows(v)) {
      const PartitionedKernel& pk = bank.partition(v, j);
      EXPECT_EQ(pk.plan().period, grid.nlon());
      EXPECT_EQ(pk.plan().kernel_len, grid.nlon());

      std::vector<double> line = random_line(rng, grid.nlon());
      std::vector<double> reference = line;
      filter_line_convolution(reference, bank.kernel(v, j));
      filter_line_partition(pk, line);

      const double scale = std::max(1.0, max_abs(reference));
      for (int i = 0; i < grid.nlon(); ++i) {
        EXPECT_LT(ulp_diff(line[static_cast<std::size_t>(i)],
                           reference[static_cast<std::size_t>(i)], scale),
                  kUlpEnvelope)
            << "v=" << v << " j=" << j << " i=" << i;
      }
    }
  }
}

TEST(Bank, PartitionIsCachedPerRow) {
  const LatLonGrid grid(48, 24, 3);
  const FilterBank bank(grid, {{"s1", FilterKind::kStrong},
                               {"s2", FilterKind::kStrong}});
  const int j = bank.rows(0).front();
  // Same object back on every call, and shared across variables of the
  // same kind (one table row per (kind, latitude), as for responses).
  EXPECT_EQ(&bank.partition(0, j), &bank.partition(0, j));
  EXPECT_EQ(&bank.partition(0, j), &bank.partition(1, j));
}

TEST(BatchedDriver, PairsSameRowLinesAndMatchesReference) {
  const LatLonGrid grid(48, 24, 3);  // 3 layers: one single per (var, row)
  const FilterBank bank(grid, {{"s", FilterKind::kStrong}});
  const std::vector<LineKey>& lines = bank.lines();
  ASSERT_FALSE(lines.empty());
  ASSERT_EQ(lines.size() % 3, 0u);  // nlev = 3 layers per row

  const auto n = static_cast<std::size_t>(grid.nlon());
  agcm::Rng rng(11);
  std::vector<double> data(lines.size() * n);
  for (double& x : data) x = rng.uniform(-1.0, 1.0);
  std::vector<double> reference = data;

  const int pairs = filter_lines_partition(bank, lines, data);
  // Three layers per row: exactly one pair plus one single per (var, row).
  EXPECT_EQ(pairs, static_cast<int>(lines.size() / 3));

  for (std::size_t l = 0; l < lines.size(); ++l) {
    std::span<double> ref_line(reference.data() + l * n, n);
    filter_line_convolution(ref_line,
                            bank.kernel(lines[l].var, lines[l].j));
    const double scale = std::max(1.0, max_abs(ref_line));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LT(ulp_diff(data[l * n + i], ref_line[i], scale), kUlpEnvelope)
          << "line " << l << " i=" << i;
    }
  }
}

TEST(SimdTiers, ScalarAndActiveTierAgreeBitwise) {
  // The engine's frequency-domain MAC runs through the contracted
  // pointwise / daxpy families and the FFT core is tier-independent, so a
  // forced-scalar run must reproduce the active tier bit for bit.
  const int n = 144;
  agcm::Rng rng(13);
  std::vector<double> kernel = random_kernel(rng, n);
  const std::vector<double> line0 = random_line(rng, n);
  const PartitionedKernel pk(kernel, n);

  std::vector<double> active = line0;
  filter_line_partition(pk, active);

  ASSERT_TRUE(simd::force_tier(simd::Tier::kScalar));
  std::vector<double> scalar = line0;
  filter_line_partition(pk, scalar);
  simd::reset_tier();

  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    EXPECT_EQ(active[ui], scalar[ui]) << "i=" << i;
  }
}

}  // namespace
}  // namespace agcm::filter
