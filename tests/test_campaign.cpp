// Campaign engine tests: matrix expansion from the campaign config
// dialect, config hashing, the JSON-lines store, and — the load-bearing
// property — cross-experiment isolation: a cell served concurrently next
// to other experiments, with the shared immutable caches on or off, on
// either simnet backend, produces byte-for-byte the results of the same
// cell run standalone. Also the lb_scheme / physics_regime config knobs
// the campaign axes sweep (ISSUE 9 satellites).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "campaign/matrix.hpp"
#include "campaign/planner.hpp"
#include "campaign/runner.hpp"
#include "campaign/store.hpp"
#include "core/config_load.hpp"
#include "core/model.hpp"
#include "core/whatif.hpp"
#include "io/config.hpp"
#include "perfmodel/predict.hpp"
#include "util/error.hpp"
#include "util/shared_cache.hpp"

namespace agcm {
namespace {

using campaign::Campaign;
using campaign::Cell;
using campaign::CellResult;
using campaign::RunnerOptions;

/// A fast 4-cell matrix (2 machines x 2 LB schemes on a tiny grid) used by
/// the isolation fences below.
const char* kSmallMatrix = R"(campaign = unit
nlon = 48
nlat = 30
nlev = 3
mesh_rows = 1
mesh_cols = 1
steps = 1
warmup_steps = 1
sweep_machines = paragon, t3d
sweep_lb_schemes = none, pairwise
)";

Campaign small_matrix() {
  return campaign::campaign_from(io::Config::from_string(kSmallMatrix));
}

std::string run_store(const Campaign& matrix, int concurrency) {
  RunnerOptions options;
  options.concurrency = concurrency;
  const std::vector<CellResult> results =
      campaign::run_campaign(matrix, options);
  return campaign::store_lines(matrix.name, results,
                               /*include_wall=*/false);
}

TEST(CampaignMatrix, ExpandsAllAxesInOrder) {
  const Campaign matrix = campaign::campaign_from(io::Config::from_string(
      R"(campaign = grid
nlon = 48
nlat = 30
nlev = 3
mesh_rows = 1
mesh_cols = 1
sweep_machines = paragon, t3d
sweep_resolutions = 48x30x3, 64x46x3
sweep_filter_algorithms = convolution-ring, fft-transpose
sweep_lb_schemes = none, cyclic, sorted-greedy, pairwise
sweep_physics_regimes = equinox, june-solstice, december-solstice
)"));
  EXPECT_EQ(matrix.name, "grid");
  ASSERT_EQ(matrix.cells.size(), 2u * 2u * 2u * 4u * 3u);
  // Machines vary slowest, regimes fastest; names carry all five tokens.
  EXPECT_EQ(matrix.cells.front().name,
            "paragon/48x30x3/convolution-ring/none/equinox");
  EXPECT_EQ(matrix.cells[1].name,
            "paragon/48x30x3/convolution-ring/none/june-solstice");
  EXPECT_EQ(matrix.cells.back().name,
            "t3d/64x46x3/fft-transpose/pairwise/december-solstice");

  // Every cell hashes to a distinct 16-hex-digit id.
  std::set<std::string> hashes;
  for (const Cell& cell : matrix.cells) {
    ASSERT_EQ(cell.config_hash.size(), 16u);
    EXPECT_EQ(cell.config_hash.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    hashes.insert(cell.config_hash);
  }
  EXPECT_EQ(hashes.size(), matrix.cells.size());

  // Scheme axis: "none" cells disable balancing, the rest enable it.
  EXPECT_FALSE(matrix.cells[0].spec.model.physics_load_balance);
  EXPECT_TRUE(matrix.cells[3].spec.model.physics_load_balance);
  EXPECT_EQ(matrix.cells[3].spec.model.lb_scheme, lb::Scheme::kCyclic);
}

TEST(CampaignMatrix, UnsweptAxesCollapseToBaseValue) {
  const Campaign matrix = campaign::campaign_from(io::Config::from_string(
      "campaign = single\nnlon = 48\nnlat = 30\nnlev = 3\n"
      "mesh_rows = 1\nmesh_cols = 1\n"
      "machine = t3d\nlb_scheme = sorted-greedy\n"));
  ASSERT_EQ(matrix.cells.size(), 1u);
  EXPECT_EQ(matrix.cells[0].name,
            "t3d/48x30x3/fft-load-balanced/sorted-greedy/equinox");
  EXPECT_EQ(matrix.cells[0].spec.model.lb_scheme, lb::Scheme::kSortedGreedy);
}

TEST(CampaignMatrix, RejectsMalformedAxes) {
  EXPECT_THROW(campaign::campaign_from(io::Config::from_string(
                   "sweep_resolutions = 48x30\n")),
               ConfigError);
  EXPECT_THROW(campaign::campaign_from(io::Config::from_string(
                   "sweep_machines = paragon,, t3d\n")),
               ConfigError);
  EXPECT_THROW(campaign::campaign_from(io::Config::from_string(
                   "sweep_lb_schemes = scheme4\n")),
               ConfigError);
}

TEST(CampaignMatrix, HashIgnoresHostExecutionKnobs) {
  core::RunSpec spec =
      core::run_spec_from(io::Config::from_string(
          "nlon = 48\nnlat = 30\nmesh_rows = 1\nmesh_cols = 1\n"));
  const std::string base = campaign::canonical_config(spec);

  core::RunSpec host = spec;
  host.model.simnet_backend = simnet::SimBackend::kThreads;
  host.model.simnet_workers = 7;
  host.model.recv_timeout_ms = 1;
  EXPECT_EQ(campaign::canonical_config(host), base);

  core::RunSpec physics = spec;
  physics.model.physics_regime = physics::PhysicsRegime::kJuneSolstice;
  EXPECT_NE(campaign::canonical_config(physics), base);
  core::RunSpec res = spec;
  res.model.nlev += 1;
  EXPECT_NE(campaign::canonical_config(res), base);
}

TEST(CampaignStore, RecordsCarrySchemaAndBreakdown) {
  Campaign matrix = small_matrix();
  matrix.cells.resize(1);
  RunnerOptions options;
  const std::vector<CellResult> results =
      campaign::run_campaign(matrix, options);
  ASSERT_EQ(results.size(), 1u);
  const trace::JsonValue record =
      campaign::store_record(matrix.name, results[0], /*include_wall=*/true);
  const std::string text = record.dump();
  EXPECT_NE(text.find("\"schema\":\"agcm-campaign-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"config_hash\":\"" + matrix.cells[0].config_hash),
            std::string::npos);
  EXPECT_NE(text.find("\"total_per_day_sec\""), std::string::npos);
  EXPECT_NE(text.find("\"wall_sec\""), std::string::npos);
  // --no-wall mode: the only host-dependent field is gone.
  const std::string no_wall =
      campaign::store_record(matrix.name, results[0], /*include_wall=*/false)
          .dump();
  EXPECT_EQ(no_wall.find("\"wall_sec\""), std::string::npos);
}

// The central isolation fence: every cell of a concurrently-served
// campaign is byte-identical to the same cell run standalone (fresh
// process state, one Machine at a time).
TEST(CampaignIsolation, ConcurrentMatchesStandalone) {
  const Campaign matrix = small_matrix();
  const std::string concurrent = run_store(matrix, 4);

  std::string standalone;
  for (const Cell& cell : matrix.cells) {
    CellResult result;
    result.cell = cell;
    result.report = core::run_model(cell.spec.model, cell.spec.steps,
                                    cell.spec.warmup_steps);
    standalone += campaign::store_record(matrix.name, result,
                                         /*include_wall=*/false)
                      .dump();
    standalone += '\n';
  }
  EXPECT_EQ(concurrent, standalone);
}

TEST(CampaignIsolation, SharedCachesAreResultNeutral) {
  const Campaign matrix = small_matrix();
  std::string with_caches;
  {
    util::SharedCaches::ScopedEnable on(true);
    util::SharedCaches::clear_all();
    with_caches = run_store(matrix, 4);
  }
  std::string without_caches;
  {
    util::SharedCaches::ScopedEnable off(false);
    util::SharedCaches::clear_all();
    without_caches = run_store(matrix, 4);
  }
  EXPECT_EQ(with_caches, without_caches);
}

TEST(CampaignIsolation, ThreadsBackendMatchesFibers) {
  Campaign matrix = small_matrix();
  const std::string fibers = run_store(matrix, 2);
  for (Cell& cell : matrix.cells)
    cell.spec.model.simnet_backend = simnet::SimBackend::kThreads;
  const std::string threads = run_store(matrix, 2);
  // The backend is a host-execution knob: same canonical configs, same
  // hashes, same bytes.
  EXPECT_EQ(fibers, threads);
}

TEST(CampaignRunner, ResultsKeepMatrixOrderAtAnyConcurrency) {
  const Campaign matrix = small_matrix();
  for (int concurrency : {1, 2, 8}) {
    RunnerOptions options;
    options.concurrency = concurrency;
    const std::vector<CellResult> results =
        campaign::run_campaign(matrix, options);
    ASSERT_EQ(results.size(), matrix.cells.size());
    for (std::size_t i = 0; i < results.size(); ++i)
      EXPECT_EQ(results[i].cell.name, matrix.cells[i].name);
  }
}

// ISSUE 9 satellite: Scheme 1 (cyclic) and Scheme 2 (sorted greedy) as
// first-class lb_scheme choices, ordered by residual imbalance the way the
// paper ranks them: Scheme 3 <= Scheme 2 <= Scheme 1 <= none.
TEST(LbSchemeKnob, ResidualImbalanceOrdering) {
  // Residual imbalance as the planner sees it (estimated column loads):
  // imbalance_after for the balanced schemes, imbalance_before for "none"
  // (no balance pass runs, so "after" is what it started with). Measured
  // on a june-solstice load field so day/night + season give the planners
  // genuinely uneven work. Tolerance 0 lets pairwise iterate to
  // convergence instead of stopping at the paper's 2% early-out.
  const auto residual_imbalance = [](const char* scheme) {
    const core::RunSpec spec = core::run_spec_from(io::Config::from_string(
        std::string("nlon = 48\nnlat = 30\nnlev = 3\n"
                    "mesh_rows = 4\nmesh_cols = 1\nsteps = 1\n"
                    "physics_regime = june-solstice\n"
                    "warmup_steps = 1\nlb_tolerance = 0\n"
                    "lb_max_iterations = 32\nlb_scheme = ") +
        scheme + "\n"));
    const core::RunReport report =
        core::run_model(spec.model, spec.steps, spec.warmup_steps);
    if (std::string(scheme) != "none") return report.physics_imbalance_after;
    // No balance pass runs, so no planner stats exist: take the structural
    // imbalance from the flops each rank actually executed (max/mean - 1).
    double sum = 0.0;
    double max = 0.0;
    for (const double flops : report.rank_physics_flops) {
      sum += flops;
      max = std::max(max, flops);
    }
    return max * static_cast<double>(report.rank_physics_flops.size()) / sum -
           1.0;
  };
  const double none = residual_imbalance("none");
  const double cyclic = residual_imbalance("cyclic");
  const double sorted_greedy = residual_imbalance("sorted-greedy");
  const double pairwise = residual_imbalance("pairwise");
  SCOPED_TRACE("none=" + std::to_string(none) +
               " cyclic=" + std::to_string(cyclic) +
               " sorted-greedy=" + std::to_string(sorted_greedy) +
               " pairwise=" + std::to_string(pairwise));

  // A 4x1 latitude mesh is genuinely imbalanced (polar vs tropical
  // columns), so there is something to win.
  EXPECT_GT(none, 0.05);
  const double eps = 1e-9;
  EXPECT_LE(pairwise, sorted_greedy + eps);
  EXPECT_LE(sorted_greedy, cyclic + eps);
  EXPECT_LE(cyclic, none + eps);
}

TEST(LbSchemeKnob, SchemeAliasesAndNames) {
  EXPECT_EQ(core::parse_lb_scheme("scheme1"), lb::Scheme::kCyclic);
  EXPECT_EQ(core::parse_lb_scheme("scheme2"), lb::Scheme::kSortedGreedy);
  EXPECT_EQ(core::parse_lb_scheme("scheme3"), lb::Scheme::kPairwise);
  EXPECT_STREQ(lb::scheme_name(lb::Scheme::kNone), "none");
  EXPECT_STREQ(lb::scheme_name(lb::Scheme::kCyclic), "cyclic");
  EXPECT_STREQ(lb::scheme_name(lb::Scheme::kSortedGreedy), "sorted-greedy");
  EXPECT_STREQ(lb::scheme_name(lb::Scheme::kPairwise), "pairwise");
}

// ISSUE 9 satellite: day/night + seasonal physics_regime knob. Equinox is
// the frozen historical default; the solstices tilt the subsolar point and
// must change the physics load field.
TEST(PhysicsRegimeKnob, EquinoxIsTheFrozenDefault) {
  const core::RunSpec plain = core::run_spec_from(io::Config::from_string(
      "nlon = 48\nnlat = 30\nnlev = 3\nmesh_rows = 1\nmesh_cols = 1\n"));
  const core::RunSpec equinox = core::run_spec_from(io::Config::from_string(
      "nlon = 48\nnlat = 30\nnlev = 3\nmesh_rows = 1\nmesh_cols = 1\n"
      "physics_regime = equinox\n"));
  EXPECT_EQ(plain.model.physics_regime, physics::PhysicsRegime::kEquinox);
  EXPECT_EQ(campaign::canonical_config(plain),
            campaign::canonical_config(equinox));
  EXPECT_EQ(physics::regime_declination_rad(physics::PhysicsRegime::kEquinox),
            0.0);
  EXPECT_GT(physics::regime_declination_rad(
                physics::PhysicsRegime::kJuneSolstice),
            0.0);
  EXPECT_LT(physics::regime_declination_rad(
                physics::PhysicsRegime::kDecemberSolstice),
            0.0);
}

TEST(PhysicsRegimeKnob, SolsticeChangesResults) {
  const auto total = [](const char* regime) {
    const core::RunSpec spec = core::run_spec_from(io::Config::from_string(
        std::string("nlon = 48\nnlat = 30\nnlev = 3\nmesh_rows = 1\n"
                    "mesh_cols = 1\nsteps = 1\n"
                    "warmup_steps = 1\nphysics_regime = ") +
        regime + "\n"));
    return core::run_model(spec.model, spec.steps, spec.warmup_steps)
        .per_step.physics_compute;
  };
  const double equinox = total("equinox");
  const double june = total("june-solstice");
  const double december = total("december-solstice");
  EXPECT_NE(equinox, june);
  EXPECT_NE(equinox, december);
  EXPECT_NE(june, december);
}

// --- admission planner (ISSUE 10) -----------------------------------------

/// A 6-cell training matrix (3 resolutions x lb on/off) rich enough to fit
/// the filter, fd and both physics predictors the small matrix needs.
const char* kTrainMatrix = R"(campaign = train
nlon = 48
nlat = 30
nlev = 3
mesh_rows = 1
mesh_cols = 1
steps = 1
warmup_steps = 1
sweep_resolutions = 48x30x3, 64x42x3, 96x64x4
sweep_lb_schemes = none, pairwise
)";

perfmodel::PredictModel trained_model() {
  const Campaign train =
      campaign::campaign_from(io::Config::from_string(kTrainMatrix));
  RunnerOptions options;
  options.concurrency = 2;
  const std::vector<CellResult> results =
      campaign::run_campaign(train, options);
  std::vector<perfmodel::Observation> observations;
  for (std::size_t i = 0; i < results.size(); ++i)
    observations.push_back(
        core::observation_from(train.cells[i].spec.model, results[i].report));
  return perfmodel::train_model(observations);
}

TEST(CampaignPlanner, OrdersCheapestFirstAndBudgetAdmitsPrefix) {
  const perfmodel::PredictModel model = trained_model();
  const Campaign matrix = small_matrix();

  const campaign::AdmissionPlan unlimited =
      campaign::plan_admission(matrix, model);
  ASSERT_EQ(unlimited.admitted.size(), matrix.cells.size());
  EXPECT_TRUE(unlimited.skipped.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < unlimited.admitted.size(); ++i) {
    const campaign::PlannedCell& cell = unlimited.admitted[i];
    EXPECT_GT(cell.predicted_per_day_sec, 0.0);
    if (i > 0) {
      EXPECT_GE(cell.predicted_per_day_sec,
                unlimited.admitted[i - 1].predicted_per_day_sec);
    }
    // The planner's forecast is exactly the what-if adapter's.
    const perfmodel::Prediction direct = core::predict_config(
        model, matrix.cells[cell.index].spec.model);
    EXPECT_DOUBLE_EQ(cell.prediction.total(), direct.total());
    sum += cell.predicted_per_day_sec;
  }
  EXPECT_DOUBLE_EQ(unlimited.admitted_predicted_per_day_sec, sum);

  // A budget covering exactly the two cheapest cells admits exactly them.
  const double budget = unlimited.admitted[0].predicted_per_day_sec +
                        unlimited.admitted[1].predicted_per_day_sec;
  const campaign::AdmissionPlan capped =
      campaign::plan_admission(matrix, model, budget);
  ASSERT_EQ(capped.admitted.size(), 2u);
  EXPECT_EQ(capped.skipped.size(), matrix.cells.size() - 2);
  EXPECT_EQ(capped.admitted[0].index, unlimited.admitted[0].index);
  EXPECT_EQ(capped.admitted[1].index, unlimited.admitted[1].index);
  EXPECT_DOUBLE_EQ(capped.admitted_predicted_per_day_sec, budget);

  // A zero budget admits nothing (every cell costs > 0).
  const campaign::AdmissionPlan zero =
      campaign::plan_admission(matrix, model, 0.0);
  EXPECT_TRUE(zero.admitted.empty());
  EXPECT_EQ(zero.skipped.size(), matrix.cells.size());
}

TEST(CampaignPlanner, RunPlannedAttachesPredictionsDeterministically) {
  const perfmodel::PredictModel model = trained_model();
  const Campaign matrix = small_matrix();
  const campaign::AdmissionPlan plan = campaign::plan_admission(matrix, model);

  const auto run_planned_store = [&](int concurrency) {
    RunnerOptions options;
    options.concurrency = concurrency;
    const std::vector<CellResult> results =
        campaign::run_planned(matrix, plan, options);
    return campaign::store_lines(matrix.name, results,
                                 /*include_wall=*/false);
  };
  const std::string serial = run_planned_store(1);
  EXPECT_EQ(serial, run_planned_store(4));

  RunnerOptions options;
  const std::vector<CellResult> results =
      campaign::run_planned(matrix, plan, options);
  ASSERT_EQ(results.size(), plan.admitted.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].has_prediction);
    EXPECT_DOUBLE_EQ(results[i].prediction.total(),
                     plan.admitted[i].prediction.total());
    // Results come back in plan (cheapest-first) order.
    EXPECT_EQ(results[i].cell.name,
              matrix.cells[plan.admitted[i].index].name);
    const std::string record =
        campaign::store_record(matrix.name, results[i],
                               /*include_wall=*/false)
            .dump();
    EXPECT_NE(record.find("\"predicted\":{"), std::string::npos);
    EXPECT_NE(record.find("\"total_per_day_sec\""), std::string::npos);
  }
}

TEST(CampaignStore, RecordsCarryPhasePercentiles) {
  Campaign matrix = small_matrix();
  matrix.cells.resize(1);
  RunnerOptions options;
  const std::vector<CellResult> results =
      campaign::run_campaign(matrix, options);
  ASSERT_EQ(results.size(), 1u);
  const std::string record =
      campaign::store_record(matrix.name, results[0], /*include_wall=*/false)
          .dump();
  EXPECT_NE(record.find("\"phase_percentiles\":{"), std::string::npos);
  for (const char* phase : {"\"filter\":{", "\"halo\":{", "\"fd\":{",
                            "\"physics_compute\":{", "\"physics_balance\":{"}) {
    EXPECT_NE(record.find(phase), std::string::npos) << phase;
  }
  for (const char* q : {"\"p50\":", "\"p95\":", "\"p99\":"}) {
    EXPECT_NE(record.find(q), std::string::npos) << q;
  }
  // Without a plan there is no forecast to store.
  EXPECT_EQ(record.find("\"predicted\""), std::string::npos);
}

}  // namespace
}  // namespace agcm
