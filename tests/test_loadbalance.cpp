// Tests for the load-balancing library: the three pure planners (invariant
// properties swept over random load distributions) and the collective
// executors, including the result-return round trip.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "comm/communicator.hpp"
#include "loadbalance/exchange.hpp"
#include "loadbalance/planner.hpp"
#include "loadbalance/schemes.hpp"
#include "simnet/machine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace agcm::lb {
namespace {

using comm::Communicator;
using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

/// A random item distribution: `p` ranks, roughly `per_rank` items each,
/// with a day/night-like two-population weight structure plus noise.
ItemLists random_items(int p, int per_rank, std::uint64_t seed) {
  Rng rng(seed);
  ItemLists lists(static_cast<std::size_t>(p));
  std::uint64_t id = 0;
  for (int r = 0; r < p; ++r) {
    const bool heavy_rank = rng.uniform() < 0.5;  // "daytime" ranks
    const int n = per_rank + static_cast<int>(rng.uniform_int(5));
    for (int q = 0; q < n; ++q) {
      const double base = heavy_rank ? 3.0 : 1.0;
      lists[static_cast<std::size_t>(r)].push_back(
          {id++, base * (0.8 + 0.4 * rng.uniform())});
    }
  }
  return lists;
}

double total_weight(const ItemLists& items) {
  double total = 0.0;
  for (const auto& list : items)
    for (const Item& item : list) total += item.weight;
  return total;
}

class PlannerSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlannerSweep, AllPlannersConserveTotalLoad) {
  const int p = GetParam();
  const ItemLists items = random_items(p, 40, 1000 + static_cast<std::uint64_t>(p));
  const double total = total_weight(items);
  for (const DestLists& dest :
       {plan_cyclic(items), plan_sorted_greedy(items),
        plan_pairwise(items).dest}) {
    const auto loads = loads_after(items, dest);
    EXPECT_NEAR(sum(loads), total, 1e-9 * total);
  }
}

TEST_P(PlannerSweep, SortedGreedyImprovesImbalance) {
  const int p = GetParam();
  if (p < 2) return;
  const ItemLists items = random_items(p, 40, 2000 + static_cast<std::uint64_t>(p));
  const double before = load_imbalance(loads_of(items));
  const double after = load_imbalance(loads_after(items, plan_sorted_greedy(items)));
  EXPECT_LE(after, before + 1e-12);
}

TEST_P(PlannerSweep, PairwiseImbalanceNonIncreasingPerIteration) {
  const int p = GetParam();
  if (p < 2) return;
  const ItemLists items = random_items(p, 40, 3000 + static_cast<std::uint64_t>(p));
  PairwiseOptions options;
  options.max_iterations = 4;
  const auto result = plan_pairwise(items, options);
  for (std::size_t i = 1; i < result.imbalance_history.size(); ++i)
    EXPECT_LE(result.imbalance_history[i],
              result.imbalance_history[i - 1] + 0.02);
  // With fine-grained items, two iterations should reach the low teens at
  // worst — the paper's Tables 1-3 land at 5-12.5% on real loads.
  if (result.imbalance_history.size() >= 3) {
    EXPECT_LT(result.imbalance_history[2], 0.16);
  }
}

TEST_P(PlannerSweep, CyclicBalancesUniformItems) {
  const int p = GetParam();
  // Uniform weights, identical counts: cyclic shuffle must balance almost
  // perfectly (the paper's stated guarantee for near-uniform local loads).
  ItemLists items(static_cast<std::size_t>(p));
  std::uint64_t id = 0;
  for (auto& list : items)
    for (int q = 0; q < 4 * p; ++q) list.push_back({id++, 1.0});
  const auto loads = loads_after(items, plan_cyclic(items));
  EXPECT_LT(load_imbalance(loads), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, PlannerSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 13, 16, 32, 64));

TEST(Planners, PaperFigure5Example) {
  // Loads 65, 24, 38, 15 (Figure 5A). Build one coarse item per unit.
  ItemLists items(4);
  const double loads[] = {65, 24, 38, 15};
  std::uint64_t id = 0;
  for (int r = 0; r < 4; ++r)
    for (int u = 0; u < static_cast<int>(loads[r]); ++u)
      items[static_cast<std::size_t>(r)].push_back({id++, 1.0});
  // avg = 35.5; greedy should land everyone within one unit of it.
  const auto after = loads_after(items, plan_sorted_greedy(items));
  for (double l : after) EXPECT_NEAR(l, 35.5, 1.0);
}

TEST(Planners, PaperFigure6PairwiseTwoRounds) {
  // Same initial distribution; scheme 3 with 2 iterations should reach a
  // small imbalance, like Figure 6D (36, 35, 35, 36).
  ItemLists items(4);
  const double loads[] = {65, 24, 38, 15};
  std::uint64_t id = 0;
  for (int r = 0; r < 4; ++r)
    for (int u = 0; u < static_cast<int>(loads[r]); ++u)
      items[static_cast<std::size_t>(r)].push_back({id++, 1.0});
  const auto result = plan_pairwise(items);
  EXPECT_LE(result.imbalance_history.back(), 0.05);
}

TEST(Planners, EmptyRanksAreHandled) {
  ItemLists items(3);
  items[0].push_back({0, 10.0});
  items[0].push_back({1, 10.0});
  const auto result = plan_pairwise(items);
  const auto after = loads_after(items, result.dest);
  EXPECT_LT(load_imbalance(after), load_imbalance(loads_of(items)));
}

TEST(Planners, DestinationsAreValidRanks) {
  const ItemLists items = random_items(8, 20, 99);
  for (const DestLists& dest :
       {plan_cyclic(items), plan_sorted_greedy(items),
        plan_pairwise(items).dest}) {
    for (std::size_t r = 0; r < dest.size(); ++r) {
      ASSERT_EQ(dest[r].size(), items[r].size());
      for (int d : dest[r]) {
        EXPECT_GE(d, 0);
        EXPECT_LT(d, 8);
      }
    }
  }
}

// --- collective executors ---------------------------------------------------

TEST(Collective, PairwiseBalanceMovesRealPayloads) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  const int p = 6;
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    // Rank r: (r+1)*8 items of weight (r+1) — strongly imbalanced.
    const int n = 8 * (comm.rank() + 1);
    std::vector<Item> items(static_cast<std::size_t>(n));
    std::vector<double> payloads;
    for (int q = 0; q < n; ++q) {
      const auto id = static_cast<std::uint64_t>(comm.rank()) * 1000 +
                      static_cast<std::uint64_t>(q);
      items[static_cast<std::size_t>(q)] = {id, 1.0 * (comm.rank() + 1)};
      payloads.push_back(static_cast<double>(id));
      payloads.push_back(static_cast<double>(id) + 0.5);
    }
    PairwiseOptions options;
    options.max_iterations = 3;
    const BalanceResult result =
        balance_pairwise(comm, items, payloads, 2, options);
    EXPECT_LT(result.imbalance_after, result.imbalance_before);
    // Payloads stay attached to their items.
    for (std::size_t q = 0; q < result.held_items.size(); ++q) {
      EXPECT_DOUBLE_EQ(result.held_payloads[2 * q],
                       static_cast<double>(result.held_items[q].id));
      EXPECT_DOUBLE_EQ(result.held_payloads[2 * q + 1],
                       static_cast<double>(result.held_items[q].id) + 0.5);
    }
    // Global item conservation.
    const double held =
        comm.allreduce_sum(static_cast<double>(result.held_items.size()));
    const double expected = comm.allreduce_sum(static_cast<double>(n));
    EXPECT_DOUBLE_EQ(held, expected);
  });
}

TEST(Collective, ReturnToOwnersRestoresOriginalOrder) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  const int p = 5;
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const int n = 10 + 3 * comm.rank();
    std::vector<Item> items(static_cast<std::size_t>(n));
    std::vector<double> payloads(static_cast<std::size_t>(n));
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 5);
    for (int q = 0; q < n; ++q) {
      items[static_cast<std::size_t>(q)] = {
          static_cast<std::uint64_t>(comm.rank()) * 100 +
              static_cast<std::uint64_t>(q),
          rng.uniform(0.5, 4.0)};
      payloads[static_cast<std::size_t>(q)] = 1000.0 * comm.rank() + q;
    }
    const BalanceResult result = balance_pairwise(comm, items, payloads, 1);
    // "Process": result = payload * 2 + 1.
    std::vector<double> processed(result.held_items.size());
    for (std::size_t q = 0; q < processed.size(); ++q)
      processed[q] = result.held_payloads[q] * 2.0 + 1.0;
    const auto mine = return_to_owners(comm, result, processed, 1, n);
    ASSERT_EQ(static_cast<int>(mine.size()), n);
    for (int q = 0; q < n; ++q)
      EXPECT_DOUBLE_EQ(mine[static_cast<std::size_t>(q)],
                       (1000.0 * comm.rank() + q) * 2.0 + 1.0);
  });
}

TEST(Collective, CyclicExecutorBalancesCounts) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  const int p = 4;
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const int n = 12;  // divisible by p: perfect count balance
    std::vector<Item> items(static_cast<std::size_t>(n));
    std::vector<double> payloads(static_cast<std::size_t>(n), 1.0);
    for (int q = 0; q < n; ++q)
      items[static_cast<std::size_t>(q)] = {
          static_cast<std::uint64_t>(comm.rank() * 100 + q), 1.0};
    const auto result = balance_cyclic(comm, items, payloads, 1);
    EXPECT_EQ(result.held_items.size(), static_cast<std::size_t>(n));
    EXPECT_NEAR(result.imbalance_after, 0.0, 1e-12);
  });
}

TEST(Collective, SortedGreedyExecutorImproves) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  const int p = 4;
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    // Figure 5's loads, one unit per item.
    const int loads[] = {65, 24, 38, 15};
    const int n = loads[comm.rank()];
    std::vector<Item> items(static_cast<std::size_t>(n));
    std::vector<double> payloads(static_cast<std::size_t>(n), 0.0);
    for (int q = 0; q < n; ++q)
      items[static_cast<std::size_t>(q)] = {
          static_cast<std::uint64_t>(comm.rank() * 100 + q), 1.0};
    const auto result = balance_sorted_greedy(comm, items, payloads, 1);
    EXPECT_NEAR(result.imbalance_before, (65.0 - 35.5) / 35.5, 1e-9);
    EXPECT_LT(result.imbalance_after, 0.05);
  });
}

TEST(Collective, MigrationRoutesPayloadsWithItems) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  machine.run(3, [&](RankContext& ctx) {
    Communicator comm(ctx);
    std::vector<Item> items{{static_cast<std::uint64_t>(comm.rank()), 2.0}};
    std::vector<double> payloads{static_cast<double>(comm.rank())};
    std::vector<int> dest{(comm.rank() + 1) % 3};
    const auto result = execute_migration(comm, items, payloads, 1, dest);
    ASSERT_EQ(result.held_items.size(), 1u);
    EXPECT_EQ(static_cast<int>(result.held_items[0].id),
              (comm.rank() + 2) % 3);
    EXPECT_DOUBLE_EQ(result.held_payloads[0],
                     static_cast<double>((comm.rank() + 2) % 3));
    EXPECT_EQ(result.held_origins[0].rank, (comm.rank() + 2) % 3);
  });
}

}  // namespace
}  // namespace agcm::lb
