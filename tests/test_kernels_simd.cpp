// SIMD dispatch backend: cross-tier correctness (docs/kernels.md).
//
// Every test sweeps the tiers the host can actually run (scalar always,
// AVX2/AVX-512 when built and supported) via force_tier(), so one binary
// covers whatever the machine offers and degrades gracefully elsewhere:
//
//  * the CONTRACTED families (flux/update rows, stencil interior,
//    pointwise panel, daxpy) must be BITWISE identical to the scalar
//    kernels on every tier, at awkward sizes (remainder lanes n%8 in
//    1..7), unaligned interior offsets, and through the full advection
//    engine on the test_dynamics awkward-shape sweep (ghost 1-2, 0/1/5
//    tracers);
//  * the REDUCTION families (ddot, longwave exchange, FFT butterflies)
//    must stay within a small ulp envelope of the sequential scalar forms,
//    and must be bitwise identical when the scalar tier is forced (the
//    dispatch indirection itself must not move bits).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "dynamics/advection.hpp"
#include "dynamics/advection_seed_ref.hpp"
#include "fft/fft.hpp"
#include "grid/array3d.hpp"
#include "kernels/column_kernels.hpp"
#include "kernels/simd/dispatch.hpp"
#include "singlenode/miniblas.hpp"
#include "singlenode/pointwise.hpp"
#include "util/aligned.hpp"

namespace {

namespace simd = agcm::simd;
using agcm::grid::Array3D;

template <class T>
using AlignedVec = std::vector<T, agcm::util::AlignedAllocator<T, 64>>;

/// All tiers this host can execute, scalar first.
std::vector<simd::Tier> supported_tiers() {
  std::vector<simd::Tier> tiers{simd::Tier::kScalar};
  for (simd::Tier t : {simd::Tier::kAvx2, simd::Tier::kAvx512})
    if (simd::tier_supported(t)) tiers.push_back(t);
  return tiers;
}

class ForcedTier {
 public:
  explicit ForcedTier(simd::Tier tier) {
    EXPECT_TRUE(simd::force_tier(tier));
  }
  ~ForcedTier() { simd::reset_tier(); }
  ForcedTier(const ForcedTier&) = delete;
  ForcedTier& operator=(const ForcedTier&) = delete;
};

void fill_det(std::span<double> v, unsigned seed, double base) {
  unsigned s = seed;
  for (double& x : v) {
    s = s * 1664525u + 1013904223u;
    x = base + (static_cast<double>(s >> 8) * 0x1p-24 - 0.5) * 0.125;
  }
}

bool bits_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double ulp_diff(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) return 1e30;
  auto ordered = [](double x) {
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof(u));
    return (u & 0x8000000000000000ull) ? ~u : (u | 0x8000000000000000ull);
  };
  const std::uint64_t ua = ordered(a), ub = ordered(b);
  return static_cast<double>(ua > ub ? ua - ub : ub - ua);
}

/// Awkward sizes: every remainder lane 1..7 for both 4- and 8-wide paths,
/// plus multi-vector lengths.
constexpr int kSizes[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 15, 16, 17, 23,
                          31, 32, 33, 41};
/// Interior offsets that break 64-byte alignment of every operand.
constexpr int kOffsets[] = {0, 1, 3, 5, 7};

// --- dispatch API ----------------------------------------------------------

TEST(SimdDispatch, TierNamesRoundTrip) {
  for (simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    simd::Tier parsed{};
    ASSERT_TRUE(simd::parse_tier(simd::tier_name(t), parsed));
    EXPECT_EQ(parsed, t);
  }
  simd::Tier out{};
  EXPECT_FALSE(simd::parse_tier("", out));
  EXPECT_FALSE(simd::parse_tier("sse2", out));
  EXPECT_FALSE(simd::parse_tier("avx-512", out));
  EXPECT_TRUE(simd::parse_tier("AVX2", out));  // case-insensitive
  EXPECT_EQ(out, simd::Tier::kAvx2);
}

TEST(SimdDispatch, InfoIsConsistent) {
  const simd::DispatchInfo& info = simd::info();
  EXPECT_EQ(info.active, simd::active_tier());
  EXPECT_TRUE(simd::tier_supported(simd::Tier::kScalar));
  // The active tier must be one the host supports.
  EXPECT_TRUE(simd::tier_supported(info.active));
  // A tier can only be supported if its kernels were compiled in.
  if (!info.built_avx2) EXPECT_FALSE(simd::tier_supported(simd::Tier::kAvx2));
  if (!info.built_avx512)
    EXPECT_FALSE(simd::tier_supported(simd::Tier::kAvx512));
}

TEST(SimdDispatch, ForceTierHonoursSupport) {
  for (simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (simd::tier_supported(t)) {
      EXPECT_TRUE(simd::force_tier(t));
      EXPECT_EQ(simd::active_tier(), t);
    } else {
      const simd::Tier before = simd::active_tier();
      EXPECT_FALSE(simd::force_tier(t));
      EXPECT_EQ(simd::active_tier(), before);  // table untouched on failure
    }
  }
  simd::reset_tier();
}

TEST(SimdDispatch, ScalarTierNeverDemotes) {
  const ForcedTier forced(simd::Tier::kScalar);
  EXPECT_TRUE(simd::info().demoted_families.empty());
}

TEST(SimdDispatch, FamilyMetadata) {
  EXPECT_TRUE(
      simd::family_is_contracted(simd::Family::kFluxRow));
  EXPECT_TRUE(
      simd::family_is_contracted(simd::Family::kAdvectUpdateRow));
  EXPECT_TRUE(simd::family_is_contracted(simd::Family::kPointwisePanel));
  EXPECT_TRUE(simd::family_is_contracted(simd::Family::kDaxpy));
  EXPECT_FALSE(simd::family_is_contracted(simd::Family::kDdot));
  EXPECT_FALSE(simd::family_is_contracted(simd::Family::kLongwaveExchange));
  EXPECT_FALSE(simd::family_is_contracted(simd::Family::kFftRadix2));
  EXPECT_FALSE(simd::family_is_contracted(simd::Family::kFftRadix4));
  EXPECT_STREQ(simd::family_name(simd::Family::kFluxRow), "flux_row");
}

// --- contracted row kernels: bitwise at awkward sizes and offsets ----------

TEST(SimdKernels, ContractedFamiliesBitwiseAtAwkwardShapes) {
  constexpr int kMax = 41, kPad = 8;
  // Room for the kernels that write a second region at [uoff + n, uoff + 2n).
  constexpr std::size_t kBuf = 2 * (kMax + kPad) + 2 * kPad;
  AlignedVec<double> a(kBuf), b(kBuf), c(kBuf), d(kBuf), e(kBuf), g(kBuf),
      h(kBuf), o_ref(kBuf), o_cand(kBuf);
  fill_det(a, 1u, 0.0);
  fill_det(b, 2u, 0.0);
  fill_det(c, 3u, 0.0);
  fill_det(d, 4u, 0.0);
  fill_det(e, 5u, 0.0);
  fill_det(g, 6u, 1.0);  // thickness-like divisor streams, away from zero
  fill_det(h, 7u, 1.0);

  for (simd::Tier tier : supported_tiers()) {
    SCOPED_TRACE(::testing::Message() << "tier=" << simd::tier_name(tier));
    for (int n : kSizes) {
      for (int off : kOffsets) {
        if (kPad + off + 2 * n > static_cast<int>(kBuf)) continue;
        SCOPED_TRACE(::testing::Message() << "n=" << n << " off=" << off);
        const auto uoff = static_cast<std::size_t>(kPad + off);
        auto run = [&](bool candidate, AlignedVec<double>& out) {
          fill_det(out, 9u, 0.25);
          const ForcedTier forced(candidate ? tier : simd::Tier::kScalar);
          const simd::KernelOps& ops = simd::ops();
          ops.flux_row(n, 0.75, a.data() + uoff, b.data() + uoff,
                       b.data() + uoff + 1, out.data() + uoff);
          ops.advect_update_row(n, 0.5, a.data() + uoff, b.data() + uoff,
                                c.data() + uoff, d.data() + uoff,
                                e.data() + uoff, a.data() + uoff + 1,
                                g.data() + uoff, h.data() + uoff,
                                out.data() + uoff + n);
          // stencil accumulates into out[] (refilled deterministically above).
          ops.stencil7_interior(n, a.data() + uoff, b.data() + uoff,
                                c.data() + uoff, d.data() + uoff,
                                e.data() + uoff, out.data() + uoff);
          ops.pointwise_panel(static_cast<std::size_t>(n), a.data() + uoff,
                              b.data() + uoff, out.data() + uoff + n);
          ops.daxpy(static_cast<std::size_t>(n), 0x1.8p-3, a.data() + uoff,
                    out.data() + uoff);
        };
        run(true, o_cand);
        run(false, o_ref);
        EXPECT_TRUE(bits_equal(o_ref, o_cand));
      }
    }
  }
}

// --- reduction kernels: ulp-bounded, bitwise under forced scalar -----------

TEST(SimdKernels, DdotWithinUlpEnvelope) {
  constexpr std::size_t kN = 1024;
  AlignedVec<double> x(kN), y(kN);
  fill_det(x, 21u, 1.0);
  fill_det(y, 22u, -1.0);
  double ref = 0.0;
  {
    const ForcedTier forced(simd::Tier::kScalar);
    ref = simd::ops().ddot(kN, x.data(), y.data());
    // Forced scalar is the sequential scalar sum exactly.
    EXPECT_EQ(ref, agcm::singlenode::ddot({x.data(), kN}, {y.data(), kN}));
  }
  for (simd::Tier tier : supported_tiers()) {
    SCOPED_TRACE(::testing::Message() << "tier=" << simd::tier_name(tier));
    const ForcedTier forced(tier);
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                          kN}) {
      const double got = simd::ops().ddot(n, x.data(), y.data());
      double seq = 0.0;
      for (std::size_t i = 0; i < n; ++i) seq += x[i] * y[i];
      // n*eps-scale reassociation envelope (loose but diagnostic).
      EXPECT_LE(ulp_diff(got, seq), 64.0 + static_cast<double>(n));
    }
  }
}

TEST(SimdKernels, LongwaveSweepSimdMatchesScalar) {
  for (int nlev : {1, 2, 5, 9, 17, 40}) {
    SCOPED_TRACE(::testing::Message() << "nlev=" << nlev);
    std::vector<double> emis(static_cast<std::size_t>(nlev));
    agcm::kernels::fill_longwave_emissivity(emis.data(), nlev);
    std::vector<double> theta0(static_cast<std::size_t>(nlev));
    fill_det(theta0, 31u, 290.0);

    std::vector<double> ref = theta0;
    agcm::kernels::longwave_sweep(ref.data(), nlev, emis.data(), 450.0);

    for (simd::Tier tier : supported_tiers()) {
      SCOPED_TRACE(::testing::Message() << "tier=" << simd::tier_name(tier));
      const ForcedTier forced(tier);
      std::vector<double> got = theta0;
      agcm::kernels::longwave_sweep_simd(got.data(), nlev, emis.data(),
                                         450.0);
      if (tier == simd::Tier::kScalar) {
        EXPECT_TRUE(bits_equal(ref, got));  // dispatch moves no bits
      } else {
        for (int k = 0; k < nlev; ++k)
          EXPECT_LE(ulp_diff(ref[static_cast<std::size_t>(k)],
                             got[static_cast<std::size_t>(k)]),
                    16.0);
      }
    }
  }
}

// --- production entry points ------------------------------------------------

/// The test_dynamics awkward-shape sweep, repeated per tier: the production
/// advection path must reproduce the seed bits whatever tier dispatch picks.
TEST(SimdEngine, AdvectionBitIdenticalToSeedOnEveryTier) {
  using namespace agcm::dynamics;
  struct Shape {
    int ni, nj, nk, ghost, ntracers;
  };
  constexpr Shape kShapes[] = {{1, 2, 2, 1, 1},  {3, 4, 2, 1, 0},
                               {5, 9, 1, 1, 5},  {7, 2, 3, 2, 2},
                               {9, 3, 2, 2, 1},  {12, 5, 2, 1, 3},
                               {15, 3, 1, 2, 2}, {17, 4, 2, 1, 1}};
  for (simd::Tier tier : supported_tiers()) {
    SCOPED_TRACE(::testing::Message() << "tier=" << simd::tier_name(tier));
    for (const Shape& s : kShapes) {
      SCOPED_TRACE(::testing::Message()
                   << "ni=" << s.ni << " nj=" << s.nj << " nk=" << s.nk
                   << " ghost=" << s.ghost << " tracers=" << s.ntracers);
      const agcm::grid::LatLonGrid grid(std::max(4, s.ni), s.nj + 2, s.nk);
      const agcm::grid::LocalBox box{0, s.ni, 1, s.nj};
      const Metrics metrics = Metrics::build(grid, box);

      auto fill_ghosted = [](Array3D<double>& arr, double base, int tag) {
        const int gh = arr.ghost();
        for (int k = 0; k < arr.nk(); ++k)
          for (int j = -gh; j < arr.nj() + gh; ++j)
            for (int i = -gh; i < arr.ni() + gh; ++i)
              arr(i, j, k) =
                  base + std::sin(0.31 * i + 0.17 * j + 0.53 * k + 1.7 * tag);
      };
      Array3D<double> h_old(s.ni, s.nj, s.nk, s.ghost);
      Array3D<double> h_new(s.ni, s.nj, s.nk, s.ghost);
      Array3D<double> u(s.ni, s.nj, s.nk, s.ghost);
      Array3D<double> v(s.ni, s.nj, s.nk, s.ghost);
      fill_ghosted(h_old, 1000.0, 1);
      fill_ghosted(h_new, 1000.0, 2);
      fill_ghosted(u, 0.0, 3);
      fill_ghosted(v, 0.0, 4);

      std::vector<Array3D<double>> tr_seed, tr_eng;
      std::vector<Array3D<double>*> ptr_seed, ptr_eng;
      for (int t = 0; t < s.ntracers; ++t) {
        Array3D<double> c(s.ni, s.nj, s.nk, s.ghost);
        fill_ghosted(c, 280.0 + 3.0 * t, 10 + t);
        tr_seed.push_back(c);
        tr_eng.push_back(c);
      }
      for (int t = 0; t < s.ntracers; ++t) {
        ptr_seed.push_back(&tr_seed[static_cast<std::size_t>(t)]);
        ptr_eng.push_back(&tr_eng[static_cast<std::size_t>(t)]);
      }

      advect_tracers_optimized_seed_ref(
          grid, box, metrics, h_old, h_new, u, v,
          std::span<Array3D<double>* const>(ptr_seed), 240.0);
      {
        const ForcedTier forced(tier);
        advect_tracers_optimized(grid, box, metrics, h_old, h_new, u, v,
                                 std::span<Array3D<double>* const>(ptr_eng),
                                 240.0);
      }
      for (int t = 0; t < s.ntracers; ++t) {
        const auto sa = tr_seed[static_cast<std::size_t>(t)].pack_interior();
        const auto ea = tr_eng[static_cast<std::size_t>(t)].pack_interior();
        EXPECT_TRUE(bits_equal(sa, ea)) << "tracer " << t;
      }
    }
  }
}

TEST(SimdEngine, PointwiseDispatchBitwiseOnEveryTier) {
  using namespace agcm::singlenode;
  for (simd::Tier tier : supported_tiers()) {
    SCOPED_TRACE(::testing::Message() << "tier=" << simd::tier_name(tier));
    for (int m : {1, 3, 5, 7, 9, 16, 144}) {
      for (int panels : {1, 2, 5}) {
        const auto n = static_cast<std::size_t>(m) * panels;
        std::vector<double> a(n), b(static_cast<std::size_t>(m)), ref(n),
            got(n);
        fill_det(a, 41u, 1.0);
        fill_det(b, 43u, 2.0);
        pointwise_multiply_unrolled(a, b, ref);
        const ForcedTier forced(tier);
        pointwise_multiply_dispatch(a, b, got);
        EXPECT_TRUE(bits_equal(ref, got)) << "m=" << m << " panels=" << panels;
      }
    }
  }
}

TEST(SimdEngine, MiniblasDispatchOnEveryTier) {
  using namespace agcm::singlenode;
  constexpr std::size_t kN = 103;  // odd: remainder lanes on every tier
  std::vector<double> x(kN), y0(kN);
  fill_det(x, 51u, 1.0);
  fill_det(y0, 53u, 2.0);
  std::vector<double> ref = y0;
  daxpy(0.75, x, ref);
  const double dot_ref = ddot(x, y0);
  for (simd::Tier tier : supported_tiers()) {
    SCOPED_TRACE(::testing::Message() << "tier=" << simd::tier_name(tier));
    const ForcedTier forced(tier);
    std::vector<double> got = y0;
    daxpy_dispatch(0.75, x, got);
    EXPECT_TRUE(bits_equal(ref, got));  // CONTRACTED: bitwise everywhere
    const double dot_got = ddot_dispatch(x, y0);
    if (tier == simd::Tier::kScalar) {
      EXPECT_EQ(dot_ref, dot_got);
    } else {
      EXPECT_LE(ulp_diff(dot_ref, dot_got), 256.0);
    }
  }
}

TEST(SimdEngine, FftSimdPathMatchesScalarOnEveryTier) {
  using agcm::fft::Complex;
  using agcm::fft::FftPlan;
  // 144 = 4*4*3*3 (paper grid), 1024 = pure radix-4/2, 20 = 5*4, 37 prime
  // (generic stage only), 8 = 4*2 (both SIMD radices).
  for (int n : {8, 20, 37, 144, 1024}) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const FftPlan plan(n);
    std::vector<double> re(static_cast<std::size_t>(n)),
        im(static_cast<std::size_t>(n));
    fill_det(re, 61u, 0.0);
    fill_det(im, 67u, 0.0);
    std::vector<Complex> init(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      init[static_cast<std::size_t>(i)] = {re[static_cast<std::size_t>(i)],
                                           im[static_cast<std::size_t>(i)]};

    std::vector<Complex> ref = init;
    plan.forward(ref);

    for (simd::Tier tier : supported_tiers()) {
      SCOPED_TRACE(::testing::Message() << "tier=" << simd::tier_name(tier));
      const ForcedTier forced(tier);
      std::vector<Complex> got = init;
      plan.forward_simd(got);
      const auto* rr = reinterpret_cast<const double*>(ref.data());
      const auto* gr = reinterpret_cast<const double*>(got.data());
      const auto n2 = static_cast<std::size_t>(n) * 2;
      if (tier == simd::Tier::kScalar) {
        EXPECT_TRUE(bits_equal({rr, n2}, {gr, n2}));
      } else {
        for (std::size_t i = 0; i < n2; ++i)
          EXPECT_LE(ulp_diff(rr[i], gr[i]), 16.0);
      }
      // Round trip through the SIMD inverse recovers the input closely.
      plan.inverse_simd(got);
      for (int i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        EXPECT_NEAR(got[ui].real(), init[ui].real(), 1e-12);
        EXPECT_NEAR(got[ui].imag(), init[ui].imag(), 1e-12);
      }
    }
  }
}

}  // namespace
