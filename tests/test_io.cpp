// Tests for the I/O module: byte-order reversal, history round trips
// (including foreign-endian files — the paper's Paragon workaround),
// truncation/corruption failure injection, and parallel gather/scatter.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "comm/mesh2d.hpp"
#include "dynamics/state.hpp"
#include "io/byteswap.hpp"
#include "io/config.hpp"
#include "io/history.hpp"
#include "simnet/machine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace agcm::io {
namespace {

using comm::Communicator;
using comm::Mesh2D;
using grid::Decomp2D;
using grid::LatLonGrid;
using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Byteswap, InvolutionOnScalars) {
  EXPECT_EQ(byteswap_value(byteswap_value(0x12345678u)), 0x12345678u);
  EXPECT_EQ(byteswap_value(std::uint16_t{0xABCD}), std::uint16_t{0xCDAB});
  EXPECT_EQ(byteswap_value(std::uint32_t{0x01020304}),
            std::uint32_t{0x04030201});
  const double x = -1234.5678e-12;
  EXPECT_DOUBLE_EQ(byteswap_value(byteswap_value(x)), x);
}

TEST(Byteswap, SpanInvolution) {
  Rng rng(3);
  std::vector<double> data(100);
  for (double& v : data) v = rng.normal();
  auto copy = data;
  byteswap_span<double>(copy);
  // Swapped data is (almost surely) different...
  EXPECT_GT(max_abs_diff(copy, data), 0.0);
  byteswap_span<double>(copy);
  // ...and swapping again restores it exactly.
  EXPECT_DOUBLE_EQ(max_abs_diff(copy, data), 0.0);
}

HistoryFile sample_history(int nlon = 6, int nlat = 4, int nlev = 2) {
  HistoryFile h;
  h.nlon = nlon;
  h.nlat = nlat;
  h.nlev = nlev;
  h.time_sec = 86400.0;
  h.step = 192;
  Rng rng(11);
  for (const char* name : {"h", "theta"}) {
    HistoryField field;
    field.name = name;
    field.values.resize(static_cast<std::size_t>(nlon) * nlat * nlev);
    for (double& v : field.values) v = rng.uniform(-100.0, 100.0);
    h.fields.push_back(std::move(field));
  }
  return h;
}

TEST(History, RoundTripNativeEndian) {
  const auto path = temp_path("agcm_test_native.hist");
  const HistoryFile original = sample_history();
  write_history(path, original);
  const HistoryFile loaded = read_history(path);
  EXPECT_EQ(loaded.nlon, original.nlon);
  EXPECT_EQ(loaded.nlat, original.nlat);
  EXPECT_EQ(loaded.nlev, original.nlev);
  EXPECT_DOUBLE_EQ(loaded.time_sec, original.time_sec);
  EXPECT_EQ(loaded.step, original.step);
  ASSERT_EQ(loaded.fields.size(), original.fields.size());
  for (std::size_t f = 0; f < loaded.fields.size(); ++f) {
    EXPECT_EQ(loaded.fields[f].name, original.fields[f].name);
    EXPECT_DOUBLE_EQ(
        max_abs_diff(loaded.fields[f].values, original.fields[f].values), 0.0);
  }
  std::remove(path.c_str());
}

TEST(History, RoundTripForeignEndian) {
  // The paper's scenario: history data written on a machine with the other
  // byte order; the reader must transparently reverse.
  const auto path = temp_path("agcm_test_foreign.hist");
  const HistoryFile original = sample_history();
  write_history(path, original, /*foreign_endian=*/true);
  const HistoryFile loaded = read_history(path);
  EXPECT_EQ(loaded.nlon, original.nlon);
  EXPECT_EQ(loaded.step, original.step);
  EXPECT_DOUBLE_EQ(
      max_abs_diff(loaded.fields[0].values, original.fields[0].values), 0.0);
  std::remove(path.c_str());
}

TEST(History, FindLocatesFieldsByName) {
  const HistoryFile h = sample_history();
  EXPECT_NE(h.find("theta"), nullptr);
  EXPECT_EQ(h.find("nope"), nullptr);
}

TEST(History, MissingFileThrows) {
  EXPECT_THROW(read_history(temp_path("agcm_does_not_exist.hist")), DataError);
}

TEST(History, GarbageMagicRejected) {
  const auto path = temp_path("agcm_test_garbage.hist");
  std::ofstream(path) << "definitely not a history file, much too short ok";
  EXPECT_THROW(read_history(path), DataError);
  std::remove(path.c_str());
}

TEST(History, TruncatedFileThrows) {
  const auto path = temp_path("agcm_test_trunc.hist");
  write_history(path, sample_history());
  // Chop the file at 60% of its size.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size * 6 / 10);
  EXPECT_THROW(read_history(path), DataError);
  std::remove(path.c_str());
}

TEST(History, WrongFieldSizeRejectedOnWrite) {
  const auto path = temp_path("agcm_test_badsize.hist");
  HistoryFile h = sample_history();
  h.fields[0].values.pop_back();
  EXPECT_THROW(write_history(path, h), DataError);
  std::remove(path.c_str());
}

// --- config files -------------------------------------------------------------

TEST(Config, ParsesTypedValuesWithCommentsAndBlanks) {
  const auto cfg = Config::from_string(
      "# header comment\n"
      "nlon = 144\n"
      "\n"
      "dt_sec = 450.5   # trailing comment\n"
      "machine=t3d\n"
      "physics = true\n"
      "lb = off\n");
  EXPECT_EQ(cfg.get_int("nlon", 0), 144);
  EXPECT_DOUBLE_EQ(cfg.get_double("dt_sec", 0.0), 450.5);
  EXPECT_EQ(cfg.get_string("machine", ""), "t3d");
  EXPECT_TRUE(cfg.get_bool("physics", false));
  EXPECT_FALSE(cfg.get_bool("lb", true));
}

TEST(Config, FallbacksApplyForMissingKeys) {
  const auto cfg = Config::from_string("a = 1\n");
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
}

TEST(Config, RequiredKeysThrowWhenAbsent) {
  const auto cfg = Config::from_string("a = 1\n");
  EXPECT_EQ(cfg.require_int("a"), 1);
  EXPECT_THROW(cfg.require_int("b"), ConfigError);
  EXPECT_THROW(cfg.require_string("b"), ConfigError);
}

TEST(Config, MalformedInputRejected) {
  EXPECT_THROW(Config::from_string("not a key value line\n"), ConfigError);
  EXPECT_THROW(Config::from_string("= value\n"), ConfigError);
  const auto cfg = Config::from_string("n = twelve\nb = maybe\n");
  EXPECT_THROW(cfg.get_int("n", 0), ConfigError);
  EXPECT_THROW(cfg.get_bool("b", false), ConfigError);
}

TEST(Config, UnusedKeysAreReported) {
  const auto cfg = Config::from_string("used = 1\ntypo_key = 2\n");
  EXPECT_EQ(cfg.get_int("used", 0), 1);
  const auto unused = cfg.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo_key");
}

TEST(Config, MissingFileThrowsDataError) {
  EXPECT_THROW(Config::from_file("/nonexistent/agcm.cfg"), DataError);
}

TEST(Config, LastDuplicateWins) {
  const auto cfg = Config::from_string("k = 1\nk = 2\n");
  EXPECT_EQ(cfg.get_int("k", 0), 2);
}

// --- parallel gather/scatter -------------------------------------------------

class GatherScatterSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GatherScatterSweep, StateSurvivesGatherWriteReadScatter) {
  const auto [rows, cols] = GetParam();
  const int nlon = 24, nlat = 12, nlev = 3;
  const auto path = temp_path("agcm_test_state_" + std::to_string(rows) +
                              "x" + std::to_string(cols) + ".hist");

  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(30'000);
  machine.run(rows * cols, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, rows, cols);
    const LatLonGrid grid(nlon, nlat, nlev);
    const Decomp2D decomp(nlon, nlat, rows, cols);
    const auto box = decomp.box(mesh.coord());

    dynamics::State state(box, nlev);
    dynamics::initialize_state(state, grid, box, 31415);
    state.time_sec = 1234.5;
    state.step = 42;

    // Gather to root, write (through the byte-swapped path for good
    // measure), read back, scatter into a fresh state.
    const HistoryFile history = gather_state(mesh, decomp, grid, state);
    if (world.rank() == 0) {
      EXPECT_EQ(history.fields.size(), 5u);
      write_history(path, history, /*foreign_endian=*/true);
    }
    world.barrier();
    HistoryFile loaded;
    if (world.rank() == 0) loaded = read_history(path);

    dynamics::State restored(box, nlev);
    scatter_state(mesh, decomp, grid, loaded, restored);
    EXPECT_DOUBLE_EQ(restored.time_sec, 1234.5);
    EXPECT_EQ(restored.step, 42);
    for (int k = 0; k < nlev; ++k)
      for (int j = 0; j < box.nj; ++j)
        for (int i = 0; i < box.ni; ++i) {
          EXPECT_DOUBLE_EQ(restored.h(i, j, k), state.h(i, j, k));
          EXPECT_DOUBLE_EQ(restored.u(i, j, k), state.u(i, j, k));
          EXPECT_DOUBLE_EQ(restored.v(i, j, k), state.v(i, j, k));
          EXPECT_DOUBLE_EQ(restored.theta(i, j, k), state.theta(i, j, k));
          EXPECT_DOUBLE_EQ(restored.q(i, j, k), state.q(i, j, k));
        }
  });
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Meshes, GatherScatterSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 2},
                                           std::pair{3, 2}, std::pair{2, 4}));

TEST(GatherScatter, DimensionMismatchRejected) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(10'000);
  EXPECT_THROW(
      machine.run(1,
                  [&](RankContext& ctx) {
                    Communicator world(ctx);
                    Mesh2D mesh(world, 1, 1);
                    const LatLonGrid grid(24, 12, 3);
                    const Decomp2D decomp(24, 12, 1, 1);
                    dynamics::State state(decomp.box(mesh.coord()), 3);
                    HistoryFile wrong = sample_history(6, 4, 2);
                    scatter_state(mesh, decomp, grid, wrong, state);
                  }),
      ConfigError);
}

}  // namespace
}  // namespace agcm::io
