// Tests for the single-node optimization kernels (Section 3.4): layout
// equivalence for the stencil experiment, the pointwise vector-multiply
// variants, the mini-BLAS routines, and the virtual cache model's anchors.
#include <gtest/gtest.h>

#include <cmath>

#include "singlenode/miniblas.hpp"
#include "singlenode/pointwise.hpp"
#include "singlenode/stencil.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace agcm::singlenode {
namespace {

using simnet::MachineProfile;

class StencilSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // (m, n)

TEST_P(StencilSweep, LayoutsComputeIdenticalSums) {
  const auto [m, n] = GetParam();
  const SeparateFields sep(m, n);
  const BlockFields block = BlockFields::from_separate(sep);
  std::vector<double> out_sep, out_block;
  laplace_sum_separate(sep, out_sep);
  laplace_sum_block(block, out_block);
  ASSERT_EQ(out_sep.size(), out_block.size());
  // Same arithmetic, different accumulation order across fields.
  EXPECT_LT(max_abs_diff(out_sep, out_block), 1e-11 * m);
}

INSTANTIATE_TEST_SUITE_P(Shapes, StencilSweep,
                         ::testing::Values(std::pair{1, 8}, std::pair{4, 8},
                                           std::pair{12, 8}, std::pair{3, 16},
                                           std::pair{12, 16},
                                           std::pair{7, 12}));

TEST(Stencil, LaplaceOfConstantIsZero) {
  SeparateFields sep(3, 8);
  for (auto& f : sep.fields)
    for (double& v : f) v = 4.2;
  std::vector<double> out;
  laplace_sum_separate(sep, out);
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Stencil, VirtualModelReproducesPaperRatios) {
  // "a speed-up a factor of 5 over the use of separate arrays on the Intel
  // Paragon, and a speed-up factor of 2.6 was achieved on Cray T3D" at
  // 32^3 with about a dozen fields.
  const int m = 12, n = 32;
  const auto paragon = MachineProfile::intel_paragon();
  const auto t3d = MachineProfile::cray_t3d();
  const double ratio_paragon = stencil_virtual_time_separate(paragon, m, n) /
                               stencil_virtual_time_block(paragon, m, n);
  const double ratio_t3d = stencil_virtual_time_separate(t3d, m, n) /
                           stencil_virtual_time_block(t3d, m, n);
  EXPECT_NEAR(ratio_paragon, 5.0, 0.5);
  EXPECT_NEAR(ratio_t3d, 2.6, 0.3);
}

TEST(Stencil, SmallWorkingSetsShowNoLayoutGap) {
  // When everything fits in cache both layouts run at ~full efficiency.
  const auto paragon = MachineProfile::intel_paragon();
  const double sep = stencil_cache_efficiency_separate(paragon, 2, 4);
  const double block = stencil_cache_efficiency_block(paragon, 2, 4);
  EXPECT_GT(sep, 0.75);
  EXPECT_GT(block, 0.75);
}

TEST(Stencil, EfficiencyDegradesMonotonicallyWithFields) {
  const auto paragon = MachineProfile::intel_paragon();
  double prev = 1.0;
  for (int m : {1, 2, 4, 8, 16, 32}) {
    const double eff = stencil_cache_efficiency_separate(paragon, m, 32);
    EXPECT_LE(eff, prev + 1e-12);
    prev = eff;
  }
}

TEST(Stencil, FlopModelMatchesDefinition) {
  EXPECT_DOUBLE_EQ(laplace_sum_flops(3, 4), 8.0 * 3 * 64);
}

// --- pointwise vector-multiply ----------------------------------------------

class PointwiseSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // (n, m)

TEST_P(PointwiseSweep, AllVariantsAgree) {
  const auto [n, m] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 131 + m));
  std::vector<double> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(m));
  for (double& v : a) v = rng.uniform(-2.0, 2.0);
  for (double& v : b) v = rng.uniform(-2.0, 2.0);
  std::vector<double> o1(a.size()), o2(a.size()), o3(a.size());
  pointwise_multiply_naive(a, b, o1);
  pointwise_multiply_tiled(a, b, o2);
  pointwise_multiply_unrolled(a, b, o3);
  EXPECT_DOUBLE_EQ(max_abs_diff(o1, o2), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(o1, o3), 0.0);
  // Spot-check the defining formula (equation (4)).
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(o1[i], a[i] * b[i % static_cast<std::size_t>(m)]);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PointwiseSweep,
                         ::testing::Values(std::pair{16, 4}, std::pair{64, 8},
                                           std::pair{144, 9},
                                           std::pair{144, 144},
                                           std::pair{100, 5},
                                           std::pair{12, 1},
                                           std::pair{21, 7}));

TEST(Pointwise, RejectsIndivisibleLengths) {
  std::vector<double> a(10), b(3), out(10);
  EXPECT_THROW(pointwise_multiply_naive(a, b, out), ConfigError);
}

TEST(Pointwise, RejectsEmptyB) {
  std::vector<double> a(4), b, out(4);
  EXPECT_THROW(pointwise_multiply_tiled(a, b, out), ConfigError);
}

TEST(Pointwise, RejectsWrongOutputSize) {
  std::vector<double> a(4), b(2), out(3);
  EXPECT_THROW(pointwise_multiply_unrolled(a, b, out), ConfigError);
}

// --- mini-BLAS ---------------------------------------------------------------

class BlasSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlasSweep, PlainAndUnrolledAgree) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) + 1);
  std::vector<double> x(static_cast<std::size_t>(n)), y0(x.size()), y1(x.size());
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < y0.size(); ++i) y0[i] = y1[i] = rng.uniform();

  std::vector<double> c0(x.size()), c1(x.size());
  dcopy(x, c0);
  dcopy_unrolled(x, c1);
  EXPECT_DOUBLE_EQ(max_abs_diff(c0, c1), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(c0, x), 0.0);

  auto s0 = x, s1 = x;
  dscal(1.7, s0);
  dscal_unrolled(1.7, s1);
  EXPECT_DOUBLE_EQ(max_abs_diff(s0, s1), 0.0);

  daxpy(0.3, x, y0);
  daxpy_unrolled(0.3, x, y1);
  EXPECT_DOUBLE_EQ(max_abs_diff(y0, y1), 0.0);

  // ddot's unrolled version uses 4 accumulators: allow rounding slack.
  EXPECT_NEAR(ddot(x, y0), ddot_unrolled(x, y0), 1e-10 * n + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlasSweep,
                         ::testing::Values(0, 1, 3, 4, 5, 16, 17, 1000));

TEST(Blas, DaxpyMatchesDefinition) {
  std::vector<double> x{1.0, 2.0}, y{10.0, 20.0};
  daxpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(Blas, DdotOrthogonalVectors) {
  std::vector<double> x{1.0, 0.0, -1.0, 0.0}, y{0.0, 2.0, 0.0, 5.0};
  EXPECT_DOUBLE_EQ(ddot(x, y), 0.0);
  EXPECT_DOUBLE_EQ(ddot_unrolled(x, y), 0.0);
}

}  // namespace
}  // namespace agcm::singlenode
