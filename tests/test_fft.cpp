// Tests for the FFT library: parameterized round-trip and reference-DFT
// equivalence over many lengths (all prime factorisations), the convolution
// theorem, and real-line helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "fft/dft_ref.hpp"
#include "fft/fft.hpp"
#include "fft/recursive_ref.hpp"
#include "fft/workspace.hpp"
#include "util/rng.hpp"

namespace agcm::fft {
namespace {

std::vector<Complex> random_signal(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return x;
}

double max_err(std::span<const Complex> a, std::span<const Complex> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

TEST(PrimeFactors, KnownFactorisations) {
  EXPECT_EQ(prime_factors(1), std::vector<int>{});
  EXPECT_EQ(prime_factors(2), std::vector<int>{2});
  EXPECT_EQ(prime_factors(144), (std::vector<int>{2, 2, 2, 2, 3, 3}));
  EXPECT_EQ(prime_factors(30), (std::vector<int>{2, 3, 5}));
  EXPECT_EQ(prime_factors(97), std::vector<int>{97});
  EXPECT_EQ(prime_factors(49), (std::vector<int>{7, 7}));
}

class FftLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(FftLengthSweep, MatchesReferenceDft) {
  const int n = GetParam();
  const FftPlan plan(n);
  auto x = random_signal(n, 100 + static_cast<std::uint64_t>(n));
  const auto expected = dft(x);
  plan.forward(x);
  EXPECT_LT(max_err(x, expected), 1e-9 * n) << "n=" << n;
}

TEST_P(FftLengthSweep, ForwardInverseIsIdentity) {
  const int n = GetParam();
  const FftPlan plan(n);
  const auto original = random_signal(n, 200 + static_cast<std::uint64_t>(n));
  auto x = original;
  plan.forward(x);
  plan.inverse(x);
  EXPECT_LT(max_err(x, original), 1e-10 * n) << "n=" << n;
}

TEST_P(FftLengthSweep, LinearityHolds) {
  const int n = GetParam();
  const FftPlan plan(n);
  auto a = random_signal(n, 300);
  auto b = random_signal(n, 301);
  std::vector<Complex> sum(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) sum[i] = 2.0 * a[i] + b[i];
  plan.forward(a);
  plan.forward(b);
  plan.forward(sum);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_LT(std::abs(sum[i] - (2.0 * a[i] + b[i])), 1e-9 * n);
}

// 144 is the paper's grid length; the rest cover every code path: powers of
// two, powers of three, 2*3*5 mixes, a prime, and a prime square.
INSTANTIATE_TEST_SUITE_P(Lengths, FftLengthSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 12, 16, 27,
                                           30, 45, 60, 64, 97, 120, 144, 180,
                                           240, 49));

TEST(Fft, DeltaTransformsToConstant) {
  const int n = 16;
  const FftPlan plan(n);
  std::vector<Complex> x(n, Complex{0.0, 0.0});
  x[0] = {1.0, 0.0};
  plan.forward(x);
  for (const auto& v : x) EXPECT_LT(std::abs(v - Complex{1.0, 0.0}), 1e-12);
}

TEST(Fft, SingleModeLandsInOneBin) {
  const int n = 144;
  const FftPlan plan(n);
  const int s = 5;
  std::vector<Complex> x(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double angle = 2.0 * std::numbers::pi * s * j / n;
    x[static_cast<std::size_t>(j)] = {std::cos(angle), std::sin(angle)};
  }
  plan.forward(x);
  for (int k = 0; k < n; ++k) {
    const double expected = k == s ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(x[static_cast<std::size_t>(k)]), expected, 1e-8);
  }
}

TEST(Fft, RealRoundTrip) {
  const int n = 144;
  const FftPlan plan(n);
  Rng rng(7);
  std::vector<double> line(static_cast<std::size_t>(n));
  for (double& v : line) v = rng.uniform(-3.0, 3.0);
  auto spectrum = plan.forward_real(line);
  // Conjugate symmetry of a real signal's spectrum.
  for (int s = 1; s < n; ++s)
    EXPECT_LT(std::abs(spectrum[static_cast<std::size_t>(s)] -
                       std::conj(spectrum[static_cast<std::size_t>(n - s)])),
              1e-9);
  std::vector<double> back(line.size());
  plan.inverse_to_real(spectrum, back);
  for (std::size_t i = 0; i < line.size(); ++i)
    EXPECT_NEAR(back[i], line[i], 1e-10);
}

TEST(Fft, RealPairMatchesTwoSingleTransforms) {
  const int n = 144;
  const FftPlan plan(n);
  Rng rng(21);
  std::vector<double> x(static_cast<std::size_t>(n)), y(x.size());
  for (double& v : x) v = rng.uniform(-2.0, 2.0);
  for (double& v : y) v = rng.uniform(-2.0, 2.0);
  const auto sx_ref = plan.forward_real(x);
  const auto sy_ref = plan.forward_real(y);
  std::vector<Complex> sx(x.size()), sy(y.size());
  plan.forward_real_pair(x, y, sx, sy);
  EXPECT_LT(max_err(sx, sx_ref), 1e-10);
  EXPECT_LT(max_err(sy, sy_ref), 1e-10);
}

TEST(Fft, RealPairRoundTrip) {
  const int n = 60;
  const FftPlan plan(n);
  Rng rng(22);
  std::vector<double> x(static_cast<std::size_t>(n)), y(x.size());
  for (double& v : x) v = rng.uniform(-2.0, 2.0);
  for (double& v : y) v = rng.uniform(-2.0, 2.0);
  std::vector<Complex> sx(x.size()), sy(y.size());
  plan.forward_real_pair(x, y, sx, sy);
  std::vector<double> x2(x.size()), y2(y.size());
  plan.inverse_to_real_pair(sx, sy, x2, y2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x2[i], x[i], 1e-10);
    EXPECT_NEAR(y2[i], y[i], 1e-10);
  }
}

TEST(Dft, InverseOfForward) {
  auto x = random_signal(20, 5);
  const auto back = idft(dft(x));
  EXPECT_LT(max_err(back, x), 1e-10);
}

TEST(Convolution, TheoremHolds) {
  // DFT(a (*) b) == DFT(a) .* DFT(b) — the identity the paper exploits to
  // replace convolution filtering with FFT filtering.
  const int n = 36;
  Rng rng(9);
  std::vector<double> a(static_cast<std::size_t>(n)), b(a.size());
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto conv = circular_convolution(a, b);

  const FftPlan plan(n);
  auto sa = plan.forward_real(a);
  const auto sb = plan.forward_real(b);
  for (std::size_t i = 0; i < sa.size(); ++i) sa[i] *= sb[i];
  std::vector<double> via_fft(a.size());
  plan.inverse_to_real(sa, via_fft);
  for (std::size_t i = 0; i < conv.size(); ++i)
    EXPECT_NEAR(via_fft[i], conv[i], 1e-10);
}

TEST(Convolution, DeltaKernelIsIdentity) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> delta{1.0, 0.0, 0.0, 0.0};
  const auto out = circular_convolution(a, delta);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(out[i], a[i]);
}

// ---------------------------------------------------------------------------
// Iterative-engine acceptance sweep: every length in {2..16, 36, 72, 144,
// 360, 500} (all small radices, the generic radices 7/11/13, and the AGCM
// grid lengths), each path checked against the O(n^2) reference DFT with a
// tight 1e-12 * n bound, plus exact round trips.

class EngineSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineSweep, ForwardMatchesReferenceDft) {
  const int n = GetParam();
  const FftPlan plan(n);
  auto x = random_signal(n, 1000 + static_cast<std::uint64_t>(n));
  const auto expected = dft(x);
  plan.forward(x);
  EXPECT_LT(max_err(x, expected), 1e-12 * n) << "n=" << n;
}

TEST_P(EngineSweep, InverseMatchesReferenceIdft) {
  const int n = GetParam();
  const FftPlan plan(n);
  auto x = random_signal(n, 2000 + static_cast<std::uint64_t>(n));
  const auto expected = idft(x);
  plan.inverse(x);
  EXPECT_LT(max_err(x, expected), 1e-12 * n) << "n=" << n;
}

TEST_P(EngineSweep, ForwardInverseRoundTrip) {
  const int n = GetParam();
  const FftPlan plan(n);
  const auto original = random_signal(n, 3000 + static_cast<std::uint64_t>(n));
  auto x = original;
  plan.forward(x);
  plan.inverse(x);
  EXPECT_LT(max_err(x, original), 1e-12 * n) << "n=" << n;
}

TEST_P(EngineSweep, RealPathMatchesReferenceDft) {
  const int n = GetParam();
  const FftPlan plan(n);
  Rng rng(4000 + static_cast<std::uint64_t>(n));
  std::vector<double> line(static_cast<std::size_t>(n));
  for (double& v : line) v = rng.uniform(-2.0, 2.0);
  std::vector<Complex> packed(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) packed[i] = {line[i], 0.0};
  const auto expected = dft(packed);
  std::vector<Complex> spectrum(line.size());
  plan.forward_real(line, spectrum);
  EXPECT_LT(max_err(spectrum, expected), 1e-12 * n) << "n=" << n;
  // Round trip back to the real line.
  std::vector<double> back(line.size());
  plan.inverse_to_real(spectrum, back);
  for (std::size_t i = 0; i < line.size(); ++i)
    EXPECT_NEAR(back[i], line[i], 1e-12 * n);
}

TEST_P(EngineSweep, RealPairPathMatchesReferenceDft) {
  const int n = GetParam();
  const FftPlan plan(n);
  Rng rng(5000 + static_cast<std::uint64_t>(n));
  std::vector<double> x(static_cast<std::size_t>(n)), y(x.size());
  for (double& v : x) v = rng.uniform(-2.0, 2.0);
  for (double& v : y) v = rng.uniform(-2.0, 2.0);
  std::vector<Complex> px(x.size()), py(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    px[i] = {x[i], 0.0};
    py[i] = {y[i], 0.0};
  }
  const auto ex = dft(px);
  const auto ey = dft(py);
  std::vector<Complex> sx(x.size()), sy(y.size());
  plan.forward_real_pair(x, y, sx, sy);
  EXPECT_LT(max_err(sx, ex), 1e-12 * n) << "n=" << n;
  EXPECT_LT(max_err(sy, ey), 1e-12 * n) << "n=" << n;
  // Round trip both lines through the single shared inverse transform.
  std::vector<double> x2(x.size()), y2(y.size());
  plan.inverse_to_real_pair(sx, sy, x2, y2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x2[i], x[i], 1e-12 * n);
    EXPECT_NEAR(y2[i], y[i], 1e-12 * n);
  }
}

TEST_P(EngineSweep, AgreesWithSeedRecursiveEngine) {
  const int n = GetParam();
  const FftPlan plan(n);
  const RecursiveFftPlan seed(n);
  auto a = random_signal(n, 6000 + static_cast<std::uint64_t>(n));
  auto b = a;
  plan.forward(a);
  seed.forward(b);
  EXPECT_LT(max_err(a, b), 1e-12 * n) << "n=" << n;
  plan.inverse(a);
  seed.inverse(b);
  EXPECT_LT(max_err(a, b), 1e-12 * n) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, EngineSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                           13, 14, 15, 16, 36, 72, 144, 360,
                                           500));

TEST(FftPlanStructure, StageRadicesMultiplyToLength) {
  for (int n : {2, 6, 12, 36, 72, 144, 360, 500, 97}) {
    const FftPlan plan(n);
    int prod = 1;
    for (int r : plan.stage_radices()) prod *= r;
    EXPECT_EQ(prod, n) << "n=" << n;
    EXPECT_EQ(plan.stage_count(),
              static_cast<int>(plan.stage_radices().size()));
  }
}

TEST(FftWorkspaceCache, CachedPlanMatchesFreshPlanBitwise) {
  // Plan construction is deterministic, so the workspace-cached plan and a
  // fresh plan must produce *bit-identical* transforms.
  auto& ws = FftWorkspace::local();
  for (int n : {72, 144, 500}) {
    const FftPlan fresh(n);
    const FftPlan& cached = ws.plan(n);
    EXPECT_EQ(cached.size(), n);
    auto a = random_signal(n, 7000 + static_cast<std::uint64_t>(n));
    auto b = a;
    fresh.forward(a);
    cached.forward(b);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].real(), b[i].real()) << "n=" << n << " k=" << i;
      EXPECT_EQ(a[i].imag(), b[i].imag()) << "n=" << n << " k=" << i;
    }
    fresh.inverse(a);
    cached.inverse(b);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].real(), b[i].real()) << "n=" << n << " k=" << i;
      EXPECT_EQ(a[i].imag(), b[i].imag()) << "n=" << n << " k=" << i;
    }
  }
}

TEST(FftWorkspaceCache, PlanReferenceIsStableAndNotDuplicated) {
  auto& ws = FftWorkspace::local();
  const std::size_t before = ws.plan_count();
  const FftPlan& p1 = ws.plan(60);
  const FftPlan& p2 = ws.plan(60);
  EXPECT_EQ(&p1, &p2);  // same cached instance, never rebuilt
  ws.plan(60);
  EXPECT_LE(ws.plan_count(), before + 1);
}

TEST(FlopModels, MonotoneAndOrdered) {
  EXPECT_GT(dft_flops(144), fft::FftPlan(144).flops());
  EXPECT_GT(convolution_flops(288), convolution_flops(144));
  EXPECT_GT(FftPlan(288).flops(), FftPlan(144).flops());
}

}  // namespace
}  // namespace agcm::fft
