// Tests for the dynamical core: decomposition-invariant initial conditions,
// exact conservation laws, identical results across node meshes, the
// baseline/optimized advection equivalence, and the polar-filter stability
// story the paper's filtering exists for.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numbers>
#include <map>
#include <vector>

#include "comm/mesh2d.hpp"
#include "grid/halo.hpp"
#include "dynamics/advection_seed_ref.hpp"
#include "dynamics/dynamics.hpp"
#include "simnet/machine.hpp"
#include "util/stats.hpp"

namespace agcm::dynamics {
namespace {

using comm::Communicator;
using comm::Mesh2D;
using grid::Decomp2D;
using grid::LatLonGrid;
using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

constexpr int kLon = 36, kLat = 24, kLev = 2;
constexpr std::uint64_t kSeed = 777;

/// Runs `steps` of the model on a given mesh and returns the *global* h and
/// theta fields (assembled in (i,j,k) order) plus diagnostics.
struct GlobalRun {
  std::vector<double> h, u, theta, q;
  double mass0 = 0.0, mass1 = 0.0;
  double tracer0 = 0.0, tracer1 = 0.0;
};

GlobalRun run_on_mesh(int rows, int cols, int steps, DynamicsConfig cfg,
                      int nlat = kLat) {
  GlobalRun out;
  const std::size_t total =
      static_cast<std::size_t>(kLon) * static_cast<std::size_t>(nlat) * kLev;
  out.h.resize(total);
  out.u.resize(total);
  out.theta.resize(total);
  out.q.resize(total);

  Machine machine(MachineProfile::intel_paragon());
  machine.set_recv_timeout_ms(60'000);
  machine.run(rows * cols, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, rows, cols);
    const LatLonGrid grid(kLon, nlat, kLev);
    const Decomp2D decomp(kLon, nlat, rows, cols);
    Dynamics dyn(mesh, decomp, grid, cfg);
    State state(decomp.box(mesh.coord()), kLev);
    initialize_state(state, grid, decomp.box(mesh.coord()), kSeed);

    if (world.rank() == 0) out.mass0 = 0.0;
    const double mass0 = dyn.total_mass(state);
    const double tracer0 = dyn.total_tracer_mass(state, state.theta);
    for (int s = 0; s < steps; ++s) dyn.step(state);
    const double mass1 = dyn.total_mass(state);
    const double tracer1 = dyn.total_tracer_mass(state, state.theta);

    // Assemble globals (every rank writes its own block; threads share out).
    const auto box = decomp.box(mesh.coord());
    auto put = [&](std::vector<double>& dst, const grid::Array3D<double>& a) {
      for (int k = 0; k < kLev; ++k)
        for (int j = 0; j < box.nj; ++j)
          for (int i = 0; i < box.ni; ++i)
            dst[static_cast<std::size_t>(box.i0 + i) +
                static_cast<std::size_t>(kLon) *
                    (static_cast<std::size_t>(box.j0 + j) +
                     static_cast<std::size_t>(nlat) * k)] = a(i, j, k);
    };
    put(out.h, state.h);
    put(out.u, state.u);
    put(out.theta, state.theta);
    put(out.q, state.q);
    if (world.rank() == 0) {
      out.mass0 = mass0;
      out.mass1 = mass1;
      out.tracer0 = tracer0;
      out.tracer1 = tracer1;
    }
  });
  return out;
}

DynamicsConfig base_config() {
  DynamicsConfig cfg;
  cfg.dt_sec = 120.0;
  cfg.filter_algorithm = filter::FilterAlgorithm::kFftBalanced;
  return cfg;
}

TEST(State, InitializationIsDecompositionInvariant) {
  const auto a = run_on_mesh(1, 1, 0, base_config());
  const auto b = run_on_mesh(2, 3, 0, base_config());
  EXPECT_DOUBLE_EQ(max_abs_diff(a.h, b.h), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a.theta, b.theta), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a.q, b.q), 0.0);
}

TEST(State, InitialConditionIsPhysicallySane) {
  const auto a = run_on_mesh(1, 1, 0, base_config());
  for (double h : a.h) {
    EXPECT_GT(h, 5000.0);
    EXPECT_LT(h, 11000.0);
  }
  for (double t : a.theta) {
    EXPECT_GT(t, 200.0);
    EXPECT_LT(t, 350.0);
  }
  for (double q : a.q) {
    EXPECT_GE(q, 0.0);
    EXPECT_LT(q, 0.04);
  }
}

TEST(Dynamics, MassIsConservedExactly) {
  const auto run = run_on_mesh(2, 2, 10, base_config());
  EXPECT_NEAR(run.mass1, run.mass0, 1e-10 * run.mass0);
}

TEST(Dynamics, TracerMassConservedByAdvection) {
  // Upwind flux-form transport conserves integral(theta * h) exactly. The
  // polar filter is disabled here: filtering theta and h preserves each
  // field's zonal mean but not the mean of their product.
  DynamicsConfig cfg = base_config();
  cfg.use_polar_filter = false;
  cfg.dt_sec = 60.0;  // keep the unfiltered run CFL-stable
  const auto run = run_on_mesh(2, 2, 10, cfg);
  EXPECT_NEAR(run.tracer1, run.tracer0, 1e-9 * std::abs(run.tracer0));
}

class MeshEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MeshEquivalence, ResultsIdenticalToSingleNode) {
  // The same model on any node mesh must produce the same answer: the
  // decomposition is purely a performance choice. (Filtering, halos and
  // advection all cross block boundaries, so this is a sharp end-to-end
  // test of the whole parallel stack.)
  const auto [rows, cols] = GetParam();
  DynamicsConfig cfg = base_config();
  const auto serial = run_on_mesh(1, 1, 5, cfg);
  const auto parallel = run_on_mesh(rows, cols, 5, cfg);
  EXPECT_LT(max_abs_diff(serial.h, parallel.h), 1e-9);
  EXPECT_LT(max_abs_diff(serial.u, parallel.u), 1e-9);
  EXPECT_LT(max_abs_diff(serial.theta, parallel.theta), 1e-9);
  EXPECT_LT(max_abs_diff(serial.q, parallel.q), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Meshes, MeshEquivalence,
                         ::testing::Values(std::pair{1, 4}, std::pair{4, 1},
                                           std::pair{2, 3}, std::pair{3, 2},
                                           std::pair{4, 3}));

TEST(Dynamics, FilterVariantsAgreeEndToEnd) {
  DynamicsConfig cfg = base_config();
  cfg.filter_algorithm = filter::FilterAlgorithm::kConvolutionRing;
  const auto conv = run_on_mesh(2, 2, 5, cfg);
  cfg.filter_algorithm = filter::FilterAlgorithm::kFftBalanced;
  const auto fft = run_on_mesh(2, 2, 5, cfg);
  cfg.filter_algorithm = filter::FilterAlgorithm::kFftTranspose;
  const auto fft2 = run_on_mesh(2, 2, 5, cfg);
  EXPECT_LT(max_abs_diff(conv.h, fft.h), 1e-7);
  EXPECT_LT(max_abs_diff(fft2.h, fft.h), 1e-9);
  EXPECT_LT(max_abs_diff(conv.theta, fft.theta), 1e-7);
}

TEST(Advection, OptimizedMatchesBaselineBitForBit) {
  DynamicsConfig cfg = base_config();
  cfg.optimized_advection = false;
  const auto baseline = run_on_mesh(2, 2, 6, cfg);
  cfg.optimized_advection = true;
  const auto optimized = run_on_mesh(2, 2, 6, cfg);
  EXPECT_DOUBLE_EQ(max_abs_diff(baseline.theta, optimized.theta), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(baseline.q, optimized.q), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(baseline.h, optimized.h), 0.0);
}

TEST(Advection, OptimizedIsCheaperInTheCostModel) {
  const LatLonGrid grid(kLon, kLat, kLev);
  const grid::LocalBox box{0, kLon, 0, kLat};
  const Metrics metrics = Metrics::build(grid, box);
  State state(box, kLev);
  initialize_state(state, grid, box, kSeed);
  grid::Array3D<double> h_new = state.h;
  grid::Array3D<double>* tracers1[] = {&state.theta, &state.q};
  const KernelCost base = advect_tracers_baseline(
      grid, box, metrics, state.h, h_new, state.u, state.v, tracers1, 60.0);
  State state2(box, kLev);
  initialize_state(state2, grid, box, kSeed);
  grid::Array3D<double>* tracers2[] = {&state2.theta, &state2.q};
  const KernelCost opt = advect_tracers_optimized(
      grid, box, metrics, state2.h, h_new, state2.u, state2.v, tracers2, 60.0);
  EXPECT_LT(opt.flops, base.flops);
  // The fused loop streams more arrays concurrently, so its modelled cache
  // efficiency is lower; the flop savings dominate.
  EXPECT_LT(opt.cache_efficiency, base.cache_efficiency);
  // Virtual time ratio (paper: ~35% reduction on a T3D node).
  const auto node = MachineProfile::cray_t3d();
  const double t_base = node.compute_time(base.flops, base.cache_efficiency);
  const double t_opt = node.compute_time(opt.flops, opt.cache_efficiency);
  const double reduction = 1.0 - t_opt / t_base;
  EXPECT_GT(reduction, 0.25);
  EXPECT_LT(reduction, 0.55);
}

/// Deterministic fill that covers the ghost ring too: both advection paths
/// read the same neighbour values, so any ghost content is fine as long as
/// it is identical on both sides of the comparison.
void fill_ghosted(grid::Array3D<double>& a, double base, int tag) {
  const int g = a.ghost();
  for (int k = 0; k < a.nk(); ++k)
    for (int j = -g; j < a.nj() + g; ++j)
      for (int i = -g; i < a.ni() + g; ++i)
        a(i, j, k) =
            base + std::sin(0.31 * i + 0.17 * j + 0.53 * k + 1.7 * tag);
}

TEST(Advection, EngineBitIdenticalToSeedReferenceOnAwkwardShapes) {
  // The tiled kernel engine (kernels::advect_tracers_engine, reached via
  // advect_tracers_optimized) must reproduce the preserved seed path bit
  // for bit on shapes that stress the tile machinery: blocks narrower than
  // the 4-wide unroll, partial j-tiles, wide (ghost-2) halos, zero and
  // many tracers, and a single vertical level.
  struct Shape {
    int ni, nj, nk, ghost, ntracers;
  };
  constexpr Shape kShapes[] = {{1, 2, 2, 1, 1}, {3, 4, 2, 1, 0},
                               {5, 9, 1, 1, 5}, {7, 2, 3, 2, 2},
                               {1, 1, 1, 2, 1}, {4, 17, 2, 2, 5}};
  for (const Shape& s : kShapes) {
    SCOPED_TRACE(::testing::Message()
                 << "ni=" << s.ni << " nj=" << s.nj << " nk=" << s.nk
                 << " ghost=" << s.ghost << " tracers=" << s.ntracers);
    // The local box is a sub-block of a (legal) global grid, exactly as a
    // decomposed rank would see; j0 = 1 keeps dx_vface rows interesting.
    const LatLonGrid grid(std::max(4, s.ni), s.nj + 2, s.nk);
    const grid::LocalBox box{0, s.ni, 1, s.nj};
    const Metrics metrics = Metrics::build(grid, box);

    grid::Array3D<double> h_old(s.ni, s.nj, s.nk, s.ghost);
    grid::Array3D<double> h_new(s.ni, s.nj, s.nk, s.ghost);
    grid::Array3D<double> u(s.ni, s.nj, s.nk, s.ghost);
    grid::Array3D<double> v(s.ni, s.nj, s.nk, s.ghost);
    fill_ghosted(h_old, 1000.0, 1);
    fill_ghosted(h_new, 1000.0, 2);
    fill_ghosted(u, 0.0, 3);
    fill_ghosted(v, 0.0, 4);

    std::vector<grid::Array3D<double>> tr_seed, tr_eng;
    std::vector<grid::Array3D<double>*> ptr_seed, ptr_eng;
    tr_seed.reserve(static_cast<std::size_t>(s.ntracers));
    tr_eng.reserve(static_cast<std::size_t>(s.ntracers));
    for (int t = 0; t < s.ntracers; ++t) {
      grid::Array3D<double> c(s.ni, s.nj, s.nk, s.ghost);
      fill_ghosted(c, 280.0 + 3.0 * t, 10 + t);
      tr_seed.push_back(c);
      tr_eng.push_back(c);
    }
    for (int t = 0; t < s.ntracers; ++t) {
      ptr_seed.push_back(&tr_seed[static_cast<std::size_t>(t)]);
      ptr_eng.push_back(&tr_eng[static_cast<std::size_t>(t)]);
    }

    const KernelCost c_seed = advect_tracers_optimized_seed_ref(
        grid, box, metrics, h_old, h_new, u, v,
        std::span<grid::Array3D<double>* const>(ptr_seed), 240.0);
    const KernelCost c_eng = advect_tracers_optimized(
        grid, box, metrics, h_old, h_new, u, v,
        std::span<grid::Array3D<double>* const>(ptr_eng), 240.0);

    // Identical virtual-cost model (the engine must not perturb the frozen
    // virtual-time artefacts) and bitwise-identical tracer fields.
    EXPECT_EQ(c_seed.flops, c_eng.flops);
    EXPECT_EQ(c_seed.cache_efficiency, c_eng.cache_efficiency);
    for (int t = 0; t < s.ntracers; ++t) {
      const auto a = tr_seed[static_cast<std::size_t>(t)].pack_interior();
      const auto b = tr_eng[static_cast<std::size_t>(t)].pack_interior();
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
          << "tracer " << t << " diverged bitwise";
    }
  }
}

TEST(Dynamics, PolarFilterKeepsPolarNoiseBounded) {
  // Run with and without the filter at a timestep that is CFL-stable in
  // mid-latitudes but aggressive at the poles. The filtered run must stay
  // bounded and smoother near the poles than the unfiltered one.
  // dt = 600 s is comfortably CFL-stable at mid-latitudes on this grid but
  // has a polar gravity-wave Courant number well above 1 — exactly the
  // regime the AGCM's uniform timestep creates.
  DynamicsConfig with_filter = base_config();
  with_filter.dt_sec = 600.0;
  DynamicsConfig without = with_filter;
  without.use_polar_filter = false;

  const auto filtered = run_on_mesh(2, 2, 30, with_filter);
  const auto unfiltered = run_on_mesh(2, 2, 30, without);

  auto polar_roughness = [&](const std::vector<double>& u) {
    // Max |second zonal difference| over the two polemost rows, layer 0;
    // non-finite values (a blown-up run) count as infinitely rough.
    double rough = 0.0;
    for (int gj : {0, kLat - 1}) {
      for (int gi = 0; gi < kLon; ++gi) {
        const auto at = [&](int i) {
          return u[static_cast<std::size_t>((i + kLon) % kLon) +
                   static_cast<std::size_t>(kLon) * static_cast<std::size_t>(gj)];
        };
        const double d2 = at(gi + 1) - 2 * at(gi) + at(gi - 1);
        if (!std::isfinite(d2)) return 1.0e300;
        rough = std::max(rough, std::abs(d2));
      }
    }
    return rough;
  };

  for (double v : filtered.u) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LT(std::abs(v), 500.0);
  }
  EXPECT_LT(polar_roughness(filtered.u), polar_roughness(unfiltered.u));
}

TEST(Dynamics, CourantDiagnosticsReflectTimestep) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(30'000);
  machine.run(1, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 1, 1);
    const LatLonGrid grid(kLon, kLat, kLev);
    const Decomp2D decomp(kLon, kLat, 1, 1);
    DynamicsConfig cfg = base_config();
    Dynamics dyn(mesh, decomp, grid, cfg);
    State state(decomp.box(mesh.coord()), kLev);
    initialize_state(state, grid, decomp.box(mesh.coord()), kSeed);
    const double c1 = dyn.max_zonal_courant(state);
    EXPECT_GT(c1, 0.0);
    // Scaling dt scales the Courant number linearly.
    DynamicsConfig cfg2 = cfg;
    cfg2.dt_sec = 5.0 * cfg.dt_sec;
    Dynamics dyn2(mesh, decomp, grid, cfg2);
    EXPECT_NEAR(dyn2.max_zonal_courant(state), 5.0 * c1, 1e-9);
    // The gravity-wave Courant at the poles exceeds 1 for a timestep that
    // mid-latitudes tolerate easily — the reason the polar filter exists.
    EXPECT_GT(dyn2.max_gravity_courant(state), 1.0);
  });
}

TEST(Dynamics, TimingsArePopulatedAndPositive) {
  Machine machine(MachineProfile::intel_paragon());
  machine.set_recv_timeout_ms(30'000);
  machine.run(4, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 2, 2);
    const LatLonGrid grid(kLon, kLat, kLev);
    const Decomp2D decomp(kLon, kLat, 2, 2);
    Dynamics dyn(mesh, decomp, grid, base_config());
    State state(decomp.box(mesh.coord()), kLev);
    initialize_state(state, grid, decomp.box(mesh.coord()), kSeed);
    dyn.step(state);
    const auto t = dyn.last_timings();
    EXPECT_GT(t.filter_sec, 0.0);
    EXPECT_GT(t.halo_sec, 0.0);
    EXPECT_GT(t.fd_sec, 0.0);
    EXPECT_EQ(state.step, 1);
    EXPECT_DOUBLE_EQ(state.time_sec, base_config().dt_sec);
  });
}

TEST(Advection, SolidBodyRotationCarriesBlobAroundTheGlobe) {
  // Williamson-style test case 1: a tracer blob advected by solid-body
  // rotation (u = omega a cos(lat), v = 0) must travel at the right speed
  // — after a quarter revolution its centre of mass sits a quarter of the
  // way around — and its mass must be conserved exactly. First-order
  // upwind diffuses the blob but cannot move mass at the wrong speed.
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(60'000);
  machine.run(6, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 2, 3);
    const int nlon = 72, nlat = 20, nlev = 1;
    const LatLonGrid grid(nlon, nlat, nlev);
    const Decomp2D decomp(nlon, nlat, 2, 3);
    const auto box = decomp.box(mesh.coord());
    const Metrics metrics = Metrics::build(grid, box);

    const double omega_rot = 2.0 * std::numbers::pi / (12.0 * 86400.0);
    State state(box, nlev);
    for (int j = 0; j < box.nj; ++j) {
      const int gj = box.j0 + j;
      for (int i = 0; i < box.ni; ++i) {
        const int gi = box.i0 + i;
        state.h(i, j, 0) = 8000.0;
        state.u(i, j, 0) =
            omega_rot * grid.planet().radius_m * grid.cos_center(gj);
        state.v(i, j, 0) = 0.0;
        // Gaussian blob centred at lon 90E on the equator band.
        const double lon = grid.lon_center(gi);
        const double lat = grid.lat_center(gj);
        const double dlon = std::remainder(lon - std::numbers::pi / 2,
                                           2.0 * std::numbers::pi);
        state.theta(i, j, 0) =
            std::exp(-18.0 * (dlon * dlon + lat * lat));
        state.q(i, j, 0) = 0.0;
      }
    }

    // Advect a quarter revolution. dt chosen so the polar zonal Courant
    // number stays below 1 (solid-body: Courant is latitude-uniform here).
    const double dt = 1800.0;
    const int steps = static_cast<int>(0.25 * 12.0 * 86400.0 / dt);
    grid::Array3D<double> h_new = state.h;  // h is steady (div-free flow)

    auto tracer_mass = [&]() {
      double local = 0.0;
      for (int j = 0; j < box.nj; ++j)
        for (int i = 0; i < box.ni; ++i)
          local += state.theta(i, j, 0) * grid.cell_area_m2(box.j0 + j);
      return world.allreduce_sum(local);
    };
    const double mass0 = tracer_mass();

    for (int s = 0; s < steps; ++s) {
      grid::exchange_halo(mesh, state.theta);
      grid::exchange_halo(mesh, state.h);
      grid::exchange_halo(mesh, state.u);
      grid::exchange_halo(mesh, state.v);
      grid::Array3D<double>* tracers[] = {&state.theta};
      advect_tracers_optimized(grid, box, metrics, state.h, h_new, state.u,
                               state.v, tracers, dt);
    }

    EXPECT_NEAR(tracer_mass(), mass0, 1e-9 * std::abs(mass0));

    // Centre of mass longitude: should be ~90E + 90 = 180E.
    double sx = 0.0, sy = 0.0, total = 0.0;
    for (int j = 0; j < box.nj; ++j)
      for (int i = 0; i < box.ni; ++i) {
        const double w =
            state.theta(i, j, 0) * grid.cell_area_m2(box.j0 + j);
        const double lon = grid.lon_center(box.i0 + i);
        sx += w * std::cos(lon);
        sy += w * std::sin(lon);
        total += w;
      }
    sx = world.allreduce_sum(sx);
    sy = world.allreduce_sum(sy);
    total = world.allreduce_sum(total);
    const double com_lon = std::atan2(sy / total, sx / total);
    const double expected = std::numbers::pi;  // 180E
    EXPECT_NEAR(std::remainder(com_lon - expected, 2.0 * std::numbers::pi),
                0.0, 0.15);
  });
}

TEST(Dynamics, EnergyStaysBoundedAndNearlyConserved) {
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(60'000);
  machine.run(4, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 2, 2);
    const LatLonGrid grid(kLon, kLat, kLev);
    const Decomp2D decomp(kLon, kLat, 2, 2);
    DynamicsConfig cfg = base_config();
    Dynamics dyn(mesh, decomp, grid, cfg);
    State state(decomp.box(mesh.coord()), kLev);
    initialize_state(state, grid, decomp.box(mesh.coord()), kSeed);
    const double e0 = dyn.total_energy(state);
    EXPECT_GT(e0, 0.0);
    for (int s = 0; s < 20; ++s) dyn.step(state);
    const double e1 = dyn.total_energy(state);
    // Filtering and upwinding dissipate; gravity-wave adjustment sloshes.
    // Over 20 short steps the total must stay within a few percent.
    EXPECT_NEAR(e1, e0, 0.05 * e0);
  });
}

TEST(Dynamics, EnergyIsDecompositionInvariant) {
  double e_serial = 0.0, e_parallel = 0.0;
  for (auto [rows, cols, out] :
       {std::tuple<int, int, double*>{1, 1, &e_serial},
        std::tuple<int, int, double*>{2, 3, &e_parallel}}) {
    Machine machine(MachineProfile::ideal());
    machine.set_recv_timeout_ms(60'000);
    machine.run(rows * cols, [&, rows = rows, cols = cols,
                              out = out](RankContext& ctx) {
      Communicator world(ctx);
      Mesh2D mesh(world, rows, cols);
      const LatLonGrid grid(kLon, kLat, kLev);
      const Decomp2D decomp(kLon, kLat, rows, cols);
      Dynamics dyn(mesh, decomp, grid, base_config());
      State state(decomp.box(mesh.coord()), kLev);
      initialize_state(state, grid, decomp.box(mesh.coord()), kSeed);
      const double e = dyn.total_energy(state);
      if (world.rank() == 0) *out = e;
    });
  }
  EXPECT_NEAR(e_serial, e_parallel, 1e-9 * e_serial);
}

TEST(Leapfrog, ConservesMassExactly) {
  DynamicsConfig cfg = base_config();
  cfg.time_scheme = TimeScheme::kLeapfrog;
  const auto run = run_on_mesh(2, 2, 12, cfg);
  EXPECT_NEAR(run.mass1, run.mass0, 1e-10 * run.mass0);
}

TEST(Leapfrog, ConservesTracerMass) {
  DynamicsConfig cfg = base_config();
  cfg.time_scheme = TimeScheme::kLeapfrog;
  cfg.use_polar_filter = false;
  cfg.dt_sec = 60.0;
  const auto run = run_on_mesh(2, 2, 12, cfg);
  EXPECT_NEAR(run.tracer1, run.tracer0, 1e-9 * std::abs(run.tracer0));
}

TEST(Leapfrog, DecompositionInvariant) {
  DynamicsConfig cfg = base_config();
  cfg.time_scheme = TimeScheme::kLeapfrog;
  const auto serial = run_on_mesh(1, 1, 6, cfg);
  const auto parallel = run_on_mesh(3, 2, 6, cfg);
  EXPECT_LT(max_abs_diff(serial.h, parallel.h), 1e-9);
  EXPECT_LT(max_abs_diff(serial.u, parallel.u), 1e-9);
}

TEST(Leapfrog, StaysCloseToForwardBackwardShortTerm) {
  // Both schemes integrate the same equations: over a few steps the
  // trajectories must agree to truncation-error levels, far closer than
  // the field variability.
  DynamicsConfig fb = base_config();
  DynamicsConfig lf = base_config();
  lf.time_scheme = TimeScheme::kLeapfrog;
  const auto a = run_on_mesh(2, 2, 8, fb);
  const auto b = run_on_mesh(2, 2, 8, lf);
  double h_range = 0.0;
  for (double v : a.h) h_range = std::max(h_range, std::abs(v - 8000.0));
  EXPECT_LT(max_abs_diff(a.h, b.h), 0.2 * h_range);
  EXPECT_GT(max_abs_diff(a.h, b.h), 0.0);  // they are different schemes
}

TEST(Leapfrog, StableOverManySteps) {
  DynamicsConfig cfg = base_config();
  cfg.time_scheme = TimeScheme::kLeapfrog;
  cfg.dt_sec = 300.0;
  const auto run = run_on_mesh(2, 2, 60, cfg);
  for (double v : run.u) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LT(std::abs(v), 500.0);
  }
}

TEST(Leapfrog, RejectsBadAsselinCoefficient) {
  Machine machine(MachineProfile::ideal());
  EXPECT_THROW(machine.run(1,
                           [&](RankContext& ctx) {
                             Communicator world(ctx);
                             Mesh2D mesh(world, 1, 1);
                             const LatLonGrid grid(kLon, kLat, kLev);
                             const Decomp2D decomp(kLon, kLat, 1, 1);
                             DynamicsConfig cfg;
                             cfg.robert_asselin = 0.7;
                             Dynamics dyn(mesh, decomp, grid, cfg);
                           }),
               ConfigError);
}

TEST(Dynamics, RejectsBadTimestep) {
  Machine machine(MachineProfile::ideal());
  EXPECT_THROW(machine.run(1,
                           [&](RankContext& ctx) {
                             Communicator world(ctx);
                             Mesh2D mesh(world, 1, 1);
                             const LatLonGrid grid(kLon, kLat, kLev);
                             const Decomp2D decomp(kLon, kLat, 1, 1);
                             DynamicsConfig cfg;
                             cfg.dt_sec = -1.0;
                             Dynamics dyn(mesh, decomp, grid, cfg);
                           }),
               ConfigError);
}

}  // namespace
}  // namespace agcm::dynamics
