// Integration tests for the assembled model: run_model report sanity,
// the paper's qualitative performance relationships (filter variants,
// machines, load balancing) at miniature scale, and configuration checks.
#include <gtest/gtest.h>

#include "core/model.hpp"
#include "util/stats.hpp"

namespace agcm::core {
namespace {

ModelConfig small_config() {
  ModelConfig cfg;
  cfg.nlon = 36;
  cfg.nlat = 24;
  cfg.nlev = 3;
  cfg.mesh_rows = 2;
  cfg.mesh_cols = 2;
  cfg.dt_sec = 300.0;
  cfg.recv_timeout_ms = 120'000;
  return cfg;
}

TEST(RunModel, ReportIsPopulatedAndConsistent) {
  const auto report = run_model(small_config(), 2, 1);
  EXPECT_EQ(report.steps, 2);
  EXPECT_DOUBLE_EQ(report.steps_per_day, 288.0);
  EXPECT_GT(report.per_step.filter, 0.0);
  EXPECT_GT(report.per_step.halo, 0.0);
  EXPECT_GT(report.per_step.fd, 0.0);
  EXPECT_GT(report.per_step.physics_compute, 0.0);
  EXPECT_GT(report.total_per_day(), 0.0);
  EXPECT_NEAR(report.total_per_day(),
              report.dynamics_per_day() + report.physics_per_day(), 1e-9);
  EXPECT_EQ(report.rank_physics_flops.size(), 4u);
  EXPECT_GT(report.total_messages, 0u);
  // The model conserves mass through a full dynamics+physics run.
  EXPECT_LT(report.mass_drift_rel, 1e-12);
}

TEST(RunModel, SingleNodeHasNoFilterImbalanceWait) {
  ModelConfig cfg = small_config();
  cfg.mesh_rows = 1;
  cfg.mesh_cols = 1;
  const auto report = run_model(cfg, 1, 0);
  EXPECT_GT(report.per_step.filter, 0.0);
  EXPECT_GT(report.per_step.fd, report.per_step.halo);
}

TEST(RunModel, FftFilterBeatsConvolutionFilter) {
  // The headline result: the FFT-based filter module is much cheaper than
  // the convolution module on the same mesh. The win scales with the line
  // length (N^2 vs N log N), so this test uses the paper's 144 longitudes
  // (shortened in latitude/levels to stay fast).
  ModelConfig conv = small_config();
  conv.nlon = 144;
  conv.nlat = 24;
  ModelConfig fft = conv;
  conv.filter_algorithm = filter::FilterAlgorithm::kConvolutionRing;
  fft.filter_algorithm = filter::FilterAlgorithm::kFftBalanced;
  const auto conv_report = run_model(conv, 2, 0);
  const auto fft_report = run_model(fft, 2, 0);
  EXPECT_LT(fft_report.per_step.filter, conv_report.per_step.filter);
  EXPECT_LT(fft_report.total_per_day(), conv_report.total_per_day());
}

TEST(RunModel, LoadBalancedFftBeatsPlainFftOnTallMeshes) {
  // With many processor rows, equatorial rows idle during filtering unless
  // the Figure-2 redistribution is applied.
  ModelConfig plain = small_config();
  plain.mesh_rows = 4;
  plain.mesh_cols = 1;
  plain.filter_algorithm = filter::FilterAlgorithm::kFftTranspose;
  ModelConfig balanced = plain;
  balanced.filter_algorithm = filter::FilterAlgorithm::kFftBalanced;
  const auto plain_report = run_model(plain, 2, 0);
  const auto balanced_report = run_model(balanced, 2, 0);
  EXPECT_LT(balanced_report.per_step.filter, plain_report.per_step.filter);
}

TEST(RunModel, T3dRunsFasterThanParagon) {
  ModelConfig paragon = small_config();
  paragon.machine = simnet::MachineProfile::intel_paragon();
  ModelConfig t3d = small_config();
  t3d.machine = simnet::MachineProfile::cray_t3d();
  const auto p_report = run_model(paragon, 1, 0);
  const auto t_report = run_model(t3d, 1, 0);
  // The paper: "the parallel AGCM code runs about 2.5 times faster on Cray
  // T3D than on Intel Paragon."
  const double speedup = p_report.total_per_day() / t_report.total_per_day();
  EXPECT_GT(speedup, 1.7);
  EXPECT_LT(speedup, 3.5);
}

TEST(RunModel, MoreNodesReduceExecutionTime) {
  ModelConfig one = small_config();
  one.mesh_rows = 1;
  one.mesh_cols = 1;
  ModelConfig four = small_config();
  const auto r1 = run_model(one, 1, 0);
  const auto r4 = run_model(four, 1, 0);
  EXPECT_LT(r4.total_per_day(), r1.total_per_day());
  // ...but not superlinearly.
  EXPECT_GT(r4.total_per_day(), r1.total_per_day() / 4.5);
}

TEST(RunModel, PhysicsLoadBalanceReducesPhysicsTime) {
  ModelConfig plain = small_config();
  plain.mesh_rows = 2;
  plain.mesh_cols = 4;
  plain.nlon = 48;
  plain.physics_load_balance = false;
  ModelConfig balanced = plain;
  balanced.physics_load_balance = true;
  const auto plain_report = run_model(plain, 2, 1);
  const auto balanced_report = run_model(balanced, 2, 1);
  // Executed physics flops are more evenly spread...
  EXPECT_LT(load_imbalance(balanced_report.rank_physics_flops),
            load_imbalance(plain_report.rank_physics_flops));
  // ...and the max-rank compute time drops (balance overhead is charged
  // separately).
  EXPECT_LT(balanced_report.per_step.physics_compute,
            plain_report.per_step.physics_compute);
}

TEST(RunModel, FilterSetupIsOneTimeAndRecorded) {
  ModelConfig cfg = small_config();
  cfg.filter_algorithm = filter::FilterAlgorithm::kFftBalanced;
  const auto report = run_model(cfg, 1, 0);
  EXPECT_GT(report.filter_setup_sec, 0.0);
  // Setup is tiny compared to even one step of the model.
  EXPECT_LT(report.filter_setup_sec, report.per_step.total());
}

TEST(RunModel, DisablingPhysicsZeroesItsCost) {
  ModelConfig cfg = small_config();
  cfg.physics_enabled = false;
  const auto report = run_model(cfg, 1, 0);
  EXPECT_DOUBLE_EQ(report.per_step.physics_compute, 0.0);
  EXPECT_DOUBLE_EQ(report.per_step.physics_balance, 0.0);
  EXPECT_GT(report.per_step.fd, 0.0);
}

TEST(RunModel, InvalidStepCountRejected) {
  EXPECT_THROW(run_model(small_config(), 0), ConfigError);
  EXPECT_THROW(run_model(small_config(), 1, -1), ConfigError);
}

TEST(RunModel, LeapfrogSchemeRunsAndConservesMass) {
  ModelConfig cfg = small_config();
  cfg.time_scheme = dynamics::TimeScheme::kLeapfrog;
  const auto report = run_model(cfg, 3, 1);
  EXPECT_LT(report.mass_drift_rel, 1e-12);
  EXPECT_GT(report.total_per_day(), 0.0);
}

TEST(RunModel, FifteenLayerCostsMoreThanNine) {
  ModelConfig nine = small_config();
  nine.nlev = 3;
  ModelConfig fifteen = small_config();
  fifteen.nlev = 5;
  const auto r9 = run_model(nine, 1, 0);
  const auto r15 = run_model(fifteen, 1, 0);
  EXPECT_GT(r15.total_per_day(), r9.total_per_day());
}

}  // namespace
}  // namespace agcm::core
