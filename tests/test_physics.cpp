// Tests for the physics emulator: column determinism, the cost drivers the
// paper names (day/night, clouds, convection), the previous-pass load
// estimator, and the invariance of results under load balancing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>

#include "comm/mesh2d.hpp"
#include "dynamics/state.hpp"
#include "physics/column_seed_ref.hpp"
#include "physics/physics.hpp"
#include "simnet/machine.hpp"
#include "util/stats.hpp"

namespace agcm::physics {
namespace {

using comm::Communicator;
using comm::Mesh2D;
using grid::Decomp2D;
using grid::LatLonGrid;
using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

constexpr double kPi = std::numbers::pi;

ColumnParams params(int nlev = 5) {
  ColumnParams p;
  p.nlev = nlev;
  p.dt_sec = 300.0;
  p.seed = 99;
  return p;
}

std::vector<double> test_theta(int nlev) {
  std::vector<double> theta(static_cast<std::size_t>(nlev));
  for (int k = 0; k < nlev; ++k) theta[static_cast<std::size_t>(k)] = 290.0 + 2.0 * k;
  return theta;
}

std::vector<double> test_q(int nlev) {
  std::vector<double> q(static_cast<std::size_t>(nlev));
  for (int k = 0; k < nlev; ++k)
    q[static_cast<std::size_t>(k)] = 0.01 * std::exp(-0.3 * k);
  return q;
}

TEST(SolarZenith, OverheadAtSubsolarPoint) {
  // At t=0 the sun is overhead at (0N, 0E).
  EXPECT_NEAR(cos_solar_zenith(0.0, 0.0, 0.0, 0.0), 1.0, 1e-12);
  // Antipode is midnight.
  EXPECT_NEAR(cos_solar_zenith(0.0, kPi, 0.0, 0.0), -1.0, 1e-12);
  // Twelve hours later they swap.
  EXPECT_NEAR(cos_solar_zenith(0.0, kPi, 43200.0, 0.0), 1.0, 1e-9);
}

TEST(SolarZenith, PolesAtEquinoxAreOnTheTerminator) {
  EXPECT_NEAR(cos_solar_zenith(kPi / 2, 0.3, 12345.0, 0.0), 0.0, 1e-12);
}

TEST(Column, DeterministicGivenSameInputs) {
  const auto p = params();
  auto theta1 = test_theta(5), q1 = test_q(5);
  auto theta2 = theta1, q2 = q1;
  const auto r1 = step_column(p, 42, 3, 0.5, 1.0, 900.0, theta1, q1);
  const auto r2 = step_column(p, 42, 3, 0.5, 1.0, 900.0, theta2, q2);
  EXPECT_DOUBLE_EQ(r1.flops, r2.flops);
  EXPECT_DOUBLE_EQ(max_abs_diff(theta1, theta2), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(q1, q2), 0.0);
}

TEST(Column, DayColumnsCostMoreThanNightColumns) {
  const auto p = params();
  auto theta = test_theta(5), q = test_q(5);
  const auto day = step_column(p, 7, 0, 0.0, 0.0, 0.0, theta, q);
  auto theta2 = test_theta(5), q2 = test_q(5);
  const auto night = step_column(p, 7, 0, 0.0, kPi, 0.0, theta2, q2);
  EXPECT_TRUE(day.daytime);
  EXPECT_FALSE(night.daytime);
  EXPECT_GT(day.flops, night.flops);
}

TEST(Column, ShortwaveHeatsOnlyByDay) {
  const auto p = params();
  auto theta_day = test_theta(5), q_day = test_q(5);
  auto theta_night = test_theta(5), q_night = test_q(5);
  // Use a dry, stable column so convection does not fire and the only
  // difference is radiation.
  for (auto& v : q_day) v = 0.0;
  for (auto& v : q_night) v = 0.0;
  step_column(p, 11, 0, 0.0, 0.0, 0.0, theta_day, q_day);
  step_column(p, 11, 0, 0.0, kPi, 0.0, theta_night, q_night);
  double sum_day = 0.0, sum_night = 0.0;
  for (double v : theta_day) sum_day += v;
  for (double v : theta_night) sum_night += v;
  EXPECT_GT(sum_day, sum_night);
}

TEST(Column, ConvectionFiresOnUnstableProfiles) {
  const auto p = params();
  // Strongly unstable: theta decreasing with height.
  std::vector<double> theta{310.0, 300.0, 290.0, 280.0, 270.0};
  auto q = test_q(5);
  const auto result = step_column(p, 13, 0, 0.0, kPi, 0.0, theta, q);
  EXPECT_GT(result.convection_iters, 1);
  EXPECT_GT(result.precipitation, 0.0);
  // The adjusted profile must be (nearly) stable.
  for (int k = 0; k + 1 < 5; ++k)
    EXPECT_GT(theta[static_cast<std::size_t>(k + 1)] -
                  theta[static_cast<std::size_t>(k)],
              -0.5);
}

TEST(Column, StableDryColumnIsCheap) {
  const auto p = params();
  auto theta = test_theta(5);
  std::vector<double> q(5, 0.0);
  const auto result = step_column(p, 17, 0, 0.0, kPi, 0.0, theta, q);
  EXPECT_EQ(result.convection_iters, 1);  // one scan, no adjustment
}

TEST(Column, CostScalesQuadraticallyWithLayersForLongwave) {
  auto p5 = params(5);
  auto p10 = params(10);
  auto theta5 = test_theta(5);
  std::vector<double> q5(5, 0.0);
  auto theta10 = test_theta(10);
  std::vector<double> q10(10, 0.0);
  const auto r5 = step_column(p5, 19, 0, 0.0, kPi, 0.0, theta5, q5);
  const auto r10 = step_column(p10, 19, 0, 0.0, kPi, 0.0, theta10, q10);
  const double lw5 = p5.flops_longwave_per_pair * 25.0;
  const double lw10 = p10.flops_longwave_per_pair * 100.0;
  EXPECT_GT(r10.flops - r5.flops, 0.8 * (lw10 - lw5));
}

TEST(Column, EngineBitIdenticalToSeedReferenceAcrossShapes) {
  // The unrolled column kernels (kernels::longwave_sweep / convection_sweep
  // plus the in-place Thomas diffusion) must reproduce the preserved seed
  // path bit for bit: degenerate single-level columns, levels that are not
  // multiples of the 4-wide unroll, day and night sides, stable and
  // convectively unstable profiles, over several steps.
  for (int nlev : {1, 2, 5, 6, 9, 13}) {
    for (double lon : {0.0, kPi}) {
      SCOPED_TRACE(::testing::Message() << "nlev=" << nlev << " lon=" << lon);
      const ColumnParams p = params(nlev);
      auto theta_eng = test_theta(nlev);
      auto q_eng = test_q(nlev);
      if (nlev >= 3) {
        // Kink the profile so convection has to iterate.
        theta_eng[1] = theta_eng[2] + 4.0;
        q_eng[0] = 0.02;
      }
      auto theta_seed = theta_eng;
      auto q_seed = q_eng;
      for (int s = 0; s < 3; ++s) {
        const auto re =
            step_column(p, 4242, s, 0.3, lon, 300.0 * s, theta_eng, q_eng);
        const auto rs = step_column_seed_ref(p, 4242, s, 0.3, lon, 300.0 * s,
                                             theta_seed, q_seed);
        // The virtual cost model and every diagnostic must agree exactly.
        EXPECT_EQ(re.flops, rs.flops);
        EXPECT_EQ(re.daytime, rs.daytime);
        EXPECT_EQ(re.convection_iters, rs.convection_iters);
        EXPECT_EQ(re.cloud_fraction, rs.cloud_fraction);
        EXPECT_EQ(re.precipitation, rs.precipitation);
      }
      EXPECT_EQ(std::memcmp(theta_eng.data(), theta_seed.data(),
                            theta_eng.size() * sizeof(double)),
                0)
          << "theta diverged bitwise";
      EXPECT_EQ(std::memcmp(q_eng.data(), q_seed.data(),
                            q_eng.size() * sizeof(double)),
                0)
          << "q diverged bitwise";
    }
  }
}

TEST(Column, HumidityStaysBounded) {
  const auto p = params();
  auto theta = test_theta(5);
  std::vector<double> q(5, 0.039);
  step_column(p, 23, 0, 0.0, 0.0, 0.0, theta, q);
  for (double v : q) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 0.04);
  }
}

// --- the Physics driver -----------------------------------------------------

constexpr int kLon = 24, kLat = 12, kLev = 4;

struct DriverRun {
  std::vector<double> theta, q;       // global fields after the steps
  std::vector<double> rank_flops;     // per rank, last step
  double imbalance_before = 0.0, imbalance_after = 0.0;
};

DriverRun run_driver(int rows, int cols, int steps, bool load_balance) {
  DriverRun out;
  const std::size_t total =
      static_cast<std::size_t>(kLon) * static_cast<std::size_t>(kLat) * kLev;
  out.theta.resize(total);
  out.q.resize(total);
  out.rank_flops.resize(static_cast<std::size_t>(rows * cols));

  Machine machine(MachineProfile::intel_paragon());
  machine.set_recv_timeout_ms(60'000);
  machine.run(rows * cols, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, rows, cols);
    const LatLonGrid grid(kLon, kLat, kLev);
    const Decomp2D decomp(kLon, kLat, rows, cols);
    PhysicsConfig cfg;
    cfg.column = params(kLev);
    cfg.load_balance = load_balance;
    Physics phys(mesh, decomp, grid, cfg);
    dynamics::State state(decomp.box(mesh.coord()), kLev);
    dynamics::initialize_state(state, grid, decomp.box(mesh.coord()), 2024);

    PhysicsStepStats stats;
    for (int s = 0; s < steps; ++s) {
      stats = phys.step(state);
      state.time_sec += cfg.column.dt_sec;
      ++state.step;
    }
    const auto box = decomp.box(mesh.coord());
    for (int k = 0; k < kLev; ++k)
      for (int j = 0; j < box.nj; ++j)
        for (int i = 0; i < box.ni; ++i) {
          const std::size_t g =
              static_cast<std::size_t>(box.i0 + i) +
              static_cast<std::size_t>(kLon) *
                  (static_cast<std::size_t>(box.j0 + j) +
                   static_cast<std::size_t>(kLat) * k);
          out.theta[g] = state.theta(i, j, k);
          out.q[g] = state.q(i, j, k);
        }
    out.rank_flops[static_cast<std::size_t>(world.rank())] =
        phys.last_timings().local_flops;
    if (world.rank() == 0) {
      out.imbalance_before = stats.imbalance_before;
      out.imbalance_after = stats.imbalance_after;
    }
  });
  return out;
}

TEST(Driver, ResultsAreDecompositionInvariant) {
  const auto serial = run_driver(1, 1, 3, false);
  const auto parallel = run_driver(2, 3, 3, false);
  EXPECT_DOUBLE_EQ(max_abs_diff(serial.theta, parallel.theta), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(serial.q, parallel.q), 0.0);
}

TEST(Driver, LoadBalancingDoesNotChangeResults) {
  // The paper's scheme moves columns between processors; because every
  // column's computation depends only on its global id, step and inputs,
  // the answers must be identical with and without balancing.
  const auto plain = run_driver(2, 2, 3, false);
  const auto balanced = run_driver(2, 2, 3, true);
  EXPECT_DOUBLE_EQ(max_abs_diff(plain.theta, balanced.theta), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(plain.q, balanced.q), 0.0);
}

TEST(Driver, DayNightCreatesMeasurableImbalance) {
  const auto run = run_driver(2, 4, 2, false);
  // Executed flops per rank differ strongly (half the meridians are dark).
  EXPECT_GT(load_imbalance(run.rank_flops), 0.15);
}

TEST(Driver, BalancingReducesExecutedImbalance) {
  const auto plain = run_driver(2, 4, 3, false);
  const auto balanced = run_driver(2, 4, 3, true);
  EXPECT_LT(load_imbalance(balanced.rank_flops),
            load_imbalance(plain.rank_flops));
  // Estimated imbalance (previous-pass weights) must also improve.
  EXPECT_LT(balanced.imbalance_after, balanced.imbalance_before);
}

TEST(Driver, EstimatorTracksMeasuredCosts) {
  Machine machine(MachineProfile::intel_paragon());
  machine.set_recv_timeout_ms(60'000);
  machine.run(1, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 1, 1);
    const LatLonGrid grid(kLon, kLat, kLev);
    const Decomp2D decomp(kLon, kLat, 1, 1);
    PhysicsConfig cfg;
    cfg.column = params(kLev);
    Physics phys(mesh, decomp, grid, cfg);
    dynamics::State state(decomp.box(mesh.coord()), kLev);
    dynamics::initialize_state(state, grid, decomp.box(mesh.coord()), 7);
    // Before any pass: uniform estimates.
    for (double w : phys.column_cost_estimates()) EXPECT_DOUBLE_EQ(w, 1.0);
    phys.step(state);
    // After one pass: estimates are real flop counts, day > night.
    const auto est = phys.column_cost_estimates();
    double lo = 1e300, hi = 0.0;
    for (double w : est) {
      EXPECT_GT(w, 100.0);
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
    EXPECT_GT(hi / lo, 1.2);
  });
}

TEST(Driver, MismatchedLevelsRejected) {
  Machine machine(MachineProfile::ideal());
  EXPECT_THROW(machine.run(1,
                           [&](RankContext& ctx) {
                             Communicator world(ctx);
                             Mesh2D mesh(world, 1, 1);
                             const LatLonGrid grid(kLon, kLat, kLev);
                             const Decomp2D decomp(kLon, kLat, 1, 1);
                             PhysicsConfig cfg;
                             cfg.column = params(kLev + 1);
                             Physics phys(mesh, decomp, grid, cfg);
                           }),
               ConfigError);
}

}  // namespace
}  // namespace agcm::physics
