// Allocation-freedom test for the kernel engine: after a warm-up step, the
// steady-state dynamics + physics hot paths must not touch the heap
// (docs/kernels.md, "allocation-free steady state"). All scratch lives in
// the per-rank KernelWorkspace (flux arrays, tracer updates, column bands),
// the Physics gather buffers are members sized in the constructor, and the
// profile Thomas solves run in place via thomas_solve_into.
//
// The check hooks the global operator new/delete with a counting wrapper,
// like tests/test_comm_alloc.cpp; it lives in its own binary so the hooks
// cannot perturb the other suites. CI runs it under ASan+UBSan as well —
// the hooks pass through to malloc/aligned_alloc, so the sanitizers still
// see every underlying allocation.
//
// Unlike test_comm_alloc there is no gatekeeper protocol: the virtual
// machine here is a single rank (1x1 mesh), so exactly one thread runs and
// the global counter samples are race-free. The periodic east-west halo
// neighbour of a 1x1 mesh is the rank itself, which still exercises the
// pooled transport path under the step.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/mesh2d.hpp"
#include "dynamics/advection.hpp"
#include "dynamics/dynamics.hpp"
#include "dynamics/state.hpp"
#include "grid/array3d.hpp"
#include "grid/decomp.hpp"
#include "grid/latlon.hpp"
#include "kernels/simd/dispatch.hpp"
#include "physics/column.hpp"
#include "physics/physics.hpp"
#include "simnet/machine.hpp"

namespace {
std::atomic<std::size_t> g_new_calls{0};
}  // namespace

// Counting global allocator: malloc passthrough (sanitizer-friendly — ASan
// still sees the underlying malloc/free).
void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               ((size + static_cast<std::size_t>(align) - 1) /
                                static_cast<std::size_t>(align)) *
                                   static_cast<std::size_t>(align));
  if (p) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace agcm {
namespace {

using comm::Communicator;
using comm::Mesh2D;
using grid::Array3D;
using grid::Decomp2D;
using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

std::size_t allocs() { return g_new_calls.load(std::memory_order_relaxed); }

TEST(AllocationHook, CountsHeapTraffic) {
  const std::size_t before = allocs();
  auto* v = new std::vector<double>(1000);
  const std::size_t after = allocs();
  delete v;
  EXPECT_GE(after - before, 2u);  // the vector object + its storage
  // The aligned path (Array3D storage) must be hook-visible too.
  const std::size_t before_aligned = allocs();
  { Array3D<double> a(8, 4, 2, 1); }
  EXPECT_GE(allocs() - before_aligned, 1u);
}

TEST(KernelAllocFree, AdvectionEngineAfterWarmup) {
  const grid::LatLonGrid g(24, 16, 3);
  const grid::LocalBox box{0, g.nlon(), 0, g.nlat()};
  const dynamics::Metrics metrics = dynamics::Metrics::build(g, box);
  dynamics::State state(box, g.nlev());
  dynamics::initialize_state(state, g, box, 7);
  const Array3D<double> h_new = state.h;
  Array3D<double>* tracers[] = {&state.theta, &state.q};

  // The warm engine must stay off the heap on every SIMD dispatch tier the
  // host offers, not just the auto-selected one (the tiers share one
  // workspace, so switching must not trigger regrowth).
  for (simd::Tier tier : {simd::Tier::kScalar, simd::Tier::kAvx2,
                          simd::Tier::kAvx512}) {
    if (!simd::tier_supported(tier)) continue;
    SCOPED_TRACE(simd::tier_name(tier));
    ASSERT_TRUE(simd::force_tier(tier));  // outside the counted window
    // Warm: first call grows the workspace to this shape.
    dynamics::advect_tracers_optimized(g, box, metrics, state.h, h_new,
                                       state.u, state.v, tracers, 450.0);
    const std::size_t before = allocs();
    for (int it = 0; it < 3; ++it) {
      dynamics::advect_tracers_optimized(g, box, metrics, state.h, h_new,
                                         state.u, state.v, tracers, 450.0);
    }
    EXPECT_EQ(allocs() - before, 0u)
        << "warm advection engine touched the heap";
  }
  simd::reset_tier();
}

TEST(KernelAllocFree, ColumnPhysicsAfterWarmup) {
  physics::ColumnParams params;  // nlev 9, implicit diffusion on
  std::vector<double> theta(9), q(9);
  for (int k = 0; k < 9; ++k) {
    theta[static_cast<std::size_t>(k)] = 285.0 + 0.7 * k - (k % 3 == 1);
    q[static_cast<std::size_t>(k)] = 0.01 / (1 + k);
  }
  (void)physics::step_column(params, 11, 0, 0.4, 1.2, 0.0, theta, q);  // warm
  const std::size_t before = allocs();
  for (int s = 1; s <= 4; ++s)
    (void)physics::step_column(params, 11, s, 0.4, 1.2, 450.0 * s, theta, q);
  EXPECT_EQ(allocs() - before, 0u)
      << "warm column physics touched the heap";
}

TEST(KernelAllocFree, WarmDynamicsPlusPhysicsStep) {
  const int nlon = 24, nlat = 16, nlev = 3;
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  machine.run(1, [&](RankContext& ctx) {
    Communicator world(ctx);
    ctx.network().pool().prewarm(128, 1 << 16);
    Mesh2D mesh(world, 1, 1);
    const Decomp2D decomp(nlon, nlat, 1, 1);
    const grid::LatLonGrid g(nlon, nlat, nlev);

    dynamics::DynamicsConfig dcfg;
    dcfg.optimized_advection = true;  // the engine path
    dynamics::Dynamics dyn(mesh, decomp, g, dcfg);

    physics::PhysicsConfig pcfg;
    pcfg.column.nlev = nlev;
    pcfg.load_balance = false;  // column pass stays rank-local
    physics::Physics phys(mesh, decomp, g, pcfg);

    dynamics::State state(decomp.box(mesh.coord()), nlev);
    dynamics::initialize_state(state, g, decomp.box(mesh.coord()), 1996);

    // Warm-up: workspace growth, FFT plans, transport pool, channels.
    for (int it = 0; it < 3; ++it) {
      dyn.step(state);
      (void)phys.step(state);
    }

    const std::size_t before = allocs();
    for (int it = 0; it < 2; ++it) {
      dyn.step(state);
      (void)phys.step(state);
    }
    EXPECT_EQ(allocs() - before, 0u)
        << "warm dynamics+physics step touched the heap";
  });
}

}  // namespace
}  // namespace agcm
