// Allocation-stability test for campaign serving: constructing, running
// and destroying the same experiment repeatedly must not grow the heap
// traffic per run. The expensive immutable state (FFT plans, FilterBank
// kernel spectra, emissivity tables) lives in the process-wide shared
// caches (util/shared_cache.hpp), so after the first run every later run
// allocates exactly the same, strictly smaller, amount — no per-Machine
// duplication of cached state, and no cache that quietly grows on every
// acquisition (the ISSUE 9 call_once audit, as a regression fence).
//
// The global operator new/delete counting hook follows
// tests/test_kernel_alloc.cpp; it lives in its own binary so the hook
// cannot perturb the other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/model.hpp"
#include "util/shared_cache.hpp"

namespace {
std::atomic<std::size_t> g_new_calls{0};
}  // namespace

// Counting global allocator: malloc passthrough (sanitizer-friendly — ASan
// still sees the underlying malloc/free).
void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               ((size + static_cast<std::size_t>(align) - 1) /
                                static_cast<std::size_t>(align)) *
                                   static_cast<std::size_t>(align));
  if (p) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace agcm {
namespace {

std::size_t allocs() { return g_new_calls.load(std::memory_order_relaxed); }

core::ModelConfig small_cell() {
  core::ModelConfig config;
  config.nlon = 48;
  config.nlat = 30;
  config.nlev = 3;
  config.mesh_rows = 1;
  config.mesh_cols = 1;
  config.physics_load_balance = true;
  return config;
}

std::size_t allocs_for_one_run(const core::ModelConfig& config) {
  const std::size_t before = allocs();
  (void)core::run_model(config, /*steps=*/1, /*warmup_steps=*/1);
  return allocs() - before;
}

TEST(CampaignAllocStable, RepeatedRunsAllocateIdentically) {
  util::SharedCaches::ScopedEnable on(true);
  util::SharedCaches::clear_all();
  const core::ModelConfig config = small_cell();

  const std::size_t cold = allocs_for_one_run(config);
  const std::size_t warm2 = allocs_for_one_run(config);
  const std::size_t warm3 = allocs_for_one_run(config);
  const std::size_t warm4 = allocs_for_one_run(config);

  // The first run builds the shared immutable state; later runs reuse it.
  EXPECT_LT(warm2, cold)
      << "second run rebuilt state the shared caches should hold";
  // Steady state: every warm construct/run/destroy cycle allocates exactly
  // the same amount — any growth means some cache or registry is
  // accumulating per-Machine state.
  EXPECT_EQ(warm3, warm4) << "warm runs are not allocation-stable";
  EXPECT_LE(warm4, warm2) << "per-run allocations grew across repeats";
}

TEST(CampaignAllocStable, DisabledCachesStayColdButStable) {
  util::SharedCaches::ScopedEnable off(false);
  util::SharedCaches::clear_all();
  const core::ModelConfig config = small_cell();

  const std::size_t run1 = allocs_for_one_run(config);
  const std::size_t run2 = allocs_for_one_run(config);
  const std::size_t run3 = allocs_for_one_run(config);
  // With sharing off every run rebuilds everything: same count each time,
  // and never less than a warm shared-cache run would need.
  EXPECT_EQ(run2, run3);
  EXPECT_LE(run1, run2 + run2 / 4)
      << "first disabled run allocated wildly more than later ones";
}

}  // namespace
}  // namespace agcm
