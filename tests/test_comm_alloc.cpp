// Allocation-freedom test for the zero-copy pooled transport: after a
// warm-up sweep, the steady-state communication hot paths — multi-field
// halo exchange and the filter row-transpose — must not touch the heap
// (docs/transport.md, "allocation-free steady state").
//
// The check hooks the global operator new/delete with a counting wrapper,
// like tests/test_fft_alloc.cpp; it lives in its own binary so the hooks
// cannot perturb the other suites.
//
// Measurement protocol (the ranks run on real threads, so a naive global
// count would see other ranks' setup): all ranks warm up every code path
// including the gate messages themselves, then rank 0 plays gatekeeper —
// it samples the counter only while every other rank is provably either
// blocked in a pooled recv or executing the measured (allocation-free)
// region:
//
//   ranks != 0: send READY,  block on START
//   rank 0:     recv READYs, sample `before`, send STARTs
//   all:        measured iterations (the code under test)
//   ranks != 0: send DONE,   block on EXIT
//   rank 0:     recv DONEs,  sample `after`, assert, send EXITs
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/mesh2d.hpp"
#include "filter/bank.hpp"
#include "filter/parallel.hpp"
#include "filter/variants.hpp"
#include "grid/array3d.hpp"
#include "grid/decomp.hpp"
#include "grid/halo.hpp"
#include "grid/latlon.hpp"
#include "simnet/machine.hpp"

namespace {
std::atomic<std::size_t> g_new_calls{0};
}  // namespace

// Counting global allocator: malloc passthrough (sanitizer-friendly — ASan
// still sees the underlying malloc/free).
void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               ((size + static_cast<std::size_t>(align) - 1) /
                                static_cast<std::size_t>(align)) *
                                   static_cast<std::size_t>(align));
  if (p) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace agcm {
namespace {

using comm::Communicator;
using comm::Mesh2D;
using grid::Array3D;
using grid::Decomp2D;
using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

std::size_t allocs() { return g_new_calls.load(std::memory_order_relaxed); }

constexpr int kReady = 3001, kStart = 3002, kDone = 3003, kExit = 3004;

/// One gatekeeper round: rank 0 runs `sample_and_check` while every other
/// rank is blocked between its `entry` send and the matching release recv.
/// The gate messages themselves ride the pooled transport and are warmed
/// before the asserted round, so they are allocation-free too.
template <typename Fn, typename Sample>
void gated(const Communicator& comm, Fn&& measured, Sample&& sample) {
  if (comm.rank() == 0) {
    for (int r = 1; r < comm.size(); ++r) (void)comm.recv_value<int>(r, kReady);
    const std::size_t before = allocs();
    for (int r = 1; r < comm.size(); ++r) comm.send_value<int>(r, kStart, 1);
    measured();
    for (int r = 1; r < comm.size(); ++r) (void)comm.recv_value<int>(r, kDone);
    const std::size_t after = allocs();
    sample(before, after);
    for (int r = 1; r < comm.size(); ++r) comm.send_value<int>(r, kExit, 1);
  } else {
    comm.send_value<int>(0, kReady, 1);
    (void)comm.recv_value<int>(0, kStart);
    measured();
    comm.send_value<int>(0, kDone, 1);
    (void)comm.recv_value<int>(0, kExit);
  }
}

TEST(AllocationHook, CountsHeapTraffic) {
  const std::size_t before = allocs();
  auto* v = new std::vector<double>(1000);
  const std::size_t after = allocs();
  delete v;
  EXPECT_GE(after - before, 2u);  // the vector object + its storage
}

TEST(CommAllocFree, HaloExchangeAfterWarmup) {
  const int rows = 2, cols = 2, nlon = 24, nlat = 16, nlev = 3;
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  machine.run(rows * cols, [&](RankContext& ctx) {
    Communicator world(ctx);
    // Deterministic zero-alloc assertion under any thread interleaving:
    // cover the workload's peak buffer concurrency up front (the pool
    // would self-warm within a few sweeps anyway, but which storage grows
    // depends on scheduling).
    if (world.rank() == 0) ctx.network().pool().prewarm(128, 1 << 16);
    Mesh2D mesh(world, rows, cols);
    const Decomp2D decomp(nlon, nlat, rows, cols);
    const auto box = decomp.box(mesh.coord());

    std::vector<Array3D<double>> fields;
    std::vector<Array3D<double>*> ptrs;
    for (int v = 0; v < 3; ++v) {
      fields.emplace_back(box.ni, box.nj, nlev, 1);
      fields.back().fill(1.0 + v);
    }
    for (auto& f : fields) ptrs.push_back(&f);

    auto sweep = [&] {
      grid::exchange_halos(mesh, ptrs);                    // batched
      grid::exchange_halo(mesh, fields[0]);                // single-field
      grid::exchange_halos(mesh, ptrs, /*width=*/1,
                           grid::HaloMode::kAggregate);    // ablation mode
    };

    // Warm-up: pool growth, channel creation, gate channels.
    for (int it = 0; it < 3; ++it) sweep();
    gated(world, [] {}, [](std::size_t, std::size_t) {});

    gated(world, sweep, [](std::size_t before, std::size_t after) {
      EXPECT_EQ(after - before, 0u)
          << (after - before)
          << " heap allocations in the steady-state halo exchange";
    });
  });
}

TEST(CommAllocFree, FilterTransposeAfterWarmup) {
  const int rows = 2, cols = 2, nlon = 48, nlat = 24, nlev = 2;
  const grid::LatLonGrid grid(nlon, nlat, nlev);
  const filter::FilterBank bank(grid,
                                {{"u", filter::FilterKind::kStrong},
                                 {"t", filter::FilterKind::kWeak}});
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  machine.run(rows * cols, [&](RankContext& ctx) {
    Communicator world(ctx);
    if (world.rank() == 0) ctx.network().pool().prewarm(128, 1 << 16);
    Mesh2D mesh(world, rows, cols);
    const Decomp2D decomp(nlon, nlat, rows, cols);
    const auto box = decomp.box(mesh.coord());

    std::vector<Array3D<double>> fields;
    std::vector<Array3D<double>*> ptrs;
    for (int v = 0; v < 2; ++v) {
      fields.emplace_back(box.ni, box.nj, nlev, 1);
      for (int k = 0; k < nlev; ++k)
        for (int j = 0; j < box.nj; ++j)
          for (int i = 0; i < box.ni; ++i)
            fields.back()(i, j, k) = 0.25 * v + 0.01 * i + 0.1 * j + k;
    }
    for (auto& f : fields) ptrs.push_back(&f);

    filter::FftTransposeFilter transpose(mesh, decomp, bank);
    filter::FftBalancedFilter balanced(mesh, decomp, bank);

    auto sweep = [&] {
      transpose.apply(ptrs);
      balanced.apply(ptrs);
    };

    for (int it = 0; it < 3; ++it) sweep();
    gated(world, [] {}, [](std::size_t, std::size_t) {});

    gated(world, sweep, [](std::size_t before, std::size_t after) {
      EXPECT_EQ(after - before, 0u)
          << (after - before)
          << " heap allocations in the steady-state filter transpose";
    });
  });
}

}  // namespace
}  // namespace agcm
