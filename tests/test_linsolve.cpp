// Tests for the linear solvers: Thomas, periodic Thomas, dense Gaussian
// elimination, and the distributed (Wang partition) tridiagonal solver
// swept over rank counts and block sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/communicator.hpp"
#include "linsolve/distributed.hpp"
#include "linsolve/tridiag.hpp"
#include "simnet/machine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace agcm::linsolve {
namespace {

using comm::Communicator;
using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

/// Random diagonally dominant tridiagonal system of size n.
struct System {
  std::vector<double> a, b, c, d;
};

System random_system(int n, std::uint64_t seed, bool periodic = false) {
  Rng rng(seed);
  System sys;
  sys.a.resize(static_cast<std::size_t>(n));
  sys.b.resize(static_cast<std::size_t>(n));
  sys.c.resize(static_cast<std::size_t>(n));
  sys.d.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    sys.a[ui] = rng.uniform(-1.0, 1.0);
    sys.c[ui] = rng.uniform(-1.0, 1.0);
    sys.b[ui] = 3.0 + rng.uniform(0.0, 1.0);  // dominant
    sys.d[ui] = rng.uniform(-5.0, 5.0);
  }
  if (!periodic) {
    sys.a[0] = 0.0;
    sys.c[static_cast<std::size_t>(n - 1)] = 0.0;
  }
  return sys;
}

/// Residual of the (optionally periodic) system at x.
double residual(const System& sys, std::span<const double> x, bool periodic) {
  const int n = static_cast<int>(x.size());
  double worst = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    double lhs = sys.b[ui] * x[ui];
    if (i > 0) lhs += sys.a[ui] * x[ui - 1];
    else if (periodic) lhs += sys.a[ui] * x[static_cast<std::size_t>(n - 1)];
    if (i + 1 < n) lhs += sys.c[ui] * x[ui + 1];
    else if (periodic) lhs += sys.c[ui] * x[0];
    worst = std::max(worst, std::abs(lhs - sys.d[ui]));
  }
  return worst;
}

class ThomasSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThomasSweep, SolvesRandomDominantSystems) {
  const int n = GetParam();
  const System sys = random_system(n, 100 + static_cast<std::uint64_t>(n));
  const auto x = thomas_solve(sys.a, sys.b, sys.c, sys.d);
  EXPECT_LT(residual(sys, x, false), 1e-10);
}

TEST_P(ThomasSweep, PeriodicSolvesRandomDominantSystems) {
  const int n = GetParam();
  if (n < 3) return;
  const System sys =
      random_system(n, 200 + static_cast<std::uint64_t>(n), true);
  const auto x = periodic_thomas_solve(sys.a, sys.b, sys.c, sys.d);
  EXPECT_LT(residual(sys, x, true), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThomasSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 9, 15, 64, 301));

TEST(Thomas, IdentityMatrix) {
  std::vector<double> a{0, 0, 0}, b{1, 1, 1}, c{0, 0, 0}, d{4, 5, 6};
  const auto x = thomas_solve(a, b, c, d);
  EXPECT_DOUBLE_EQ(x[0], 4.0);
  EXPECT_DOUBLE_EQ(x[1], 5.0);
  EXPECT_DOUBLE_EQ(x[2], 6.0);
}

TEST(Thomas, KnownDiffusionSystem) {
  // (I + K L) x = d with L the Neumann second difference, constant d:
  // a constant profile is an eigenvector with eigenvalue 1 => x = d.
  const int n = 6;
  const double kd = 0.3;
  std::vector<double> a(n, -kd), b(n, 1 + 2 * kd), c(n, -kd), d(n, 7.5);
  b.front() = 1 + kd;
  b.back() = 1 + kd;
  const auto x = thomas_solve(a, b, c, d);
  for (double v : x) EXPECT_NEAR(v, 7.5, 1e-12);
}

TEST(PeriodicThomas, RejectsTinySystems) {
  std::vector<double> v{1.0, 1.0};
  EXPECT_THROW(periodic_thomas_solve(v, v, v, v), ConfigError);
}

TEST(Dense, SolvesRandomSystems) {
  Rng rng(11);
  const std::size_t n = 12;
  std::vector<double> m(n * n);
  std::vector<double> x_true(n), rhs(n, 0.0);
  for (double& v : m) v = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) m[i * n + i] += 6.0;
  for (double& v : x_true) v = rng.uniform(-2.0, 2.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t col = 0; col < n; ++col)
      rhs[r] += m[r * n + col] * x_true[col];
  const auto x = dense_solve(m, rhs);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-10);
}

TEST(Dense, PivotingHandlesZeroDiagonal) {
  // [[0 1][1 0]] x = [2, 3] -> x = [3, 2]; fails without pivoting.
  std::vector<double> m{0, 1, 1, 0};
  std::vector<double> rhs{2, 3};
  const auto x = dense_solve(m, rhs);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Dense, SingularMatrixThrows) {
  std::vector<double> m{1, 2, 2, 4};
  std::vector<double> rhs{1, 2};
  EXPECT_THROW(dense_solve(m, rhs), ConfigError);
}

// --- distributed solver -----------------------------------------------------

struct DistCase {
  int ranks;
  int n_global;
};

class DistributedSweep : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedSweep, MatchesSerialThomas) {
  const auto [p, n_global] = GetParam();
  const System sys =
      random_system(n_global, 500 + static_cast<std::uint64_t>(p * 1000 + n_global));
  const auto expected = thomas_solve(sys.a, sys.b, sys.c, sys.d);

  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  std::vector<double> assembled(static_cast<std::size_t>(n_global));
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    // Contiguous block partition with remainders.
    const int base = n_global / p;
    const int rem = n_global % p;
    const int mine = base + (comm.rank() < rem ? 1 : 0);
    const int offset =
        comm.rank() * base + std::min(comm.rank(), rem);
    const auto slice = [&](const std::vector<double>& v) {
      return std::span<const double>(v.data() + offset,
                                     static_cast<std::size_t>(mine));
    };
    const auto x = distributed_tridiagonal_solve(comm, slice(sys.a),
                                                 slice(sys.b), slice(sys.c),
                                                 slice(sys.d));
    ASSERT_EQ(static_cast<int>(x.size()), mine);
    for (int i = 0; i < mine; ++i)
      assembled[static_cast<std::size_t>(offset + i)] = x[static_cast<std::size_t>(i)];
  });
  EXPECT_LT(max_abs_diff(assembled, expected), 1e-9)
      << "p=" << p << " n=" << n_global;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributedSweep,
    ::testing::Values(DistCase{1, 16}, DistCase{2, 16}, DistCase{4, 16},
                      DistCase{4, 17}, DistCase{8, 24}, DistCase{8, 8},
                      DistCase{5, 7},  // blocks of size 1 and 2
                      DistCase{3, 100}, DistCase{16, 37}));

TEST(Distributed, SingleRowPerRank) {
  // Every block has exactly one row: the reduced system IS the system.
  const int p = 6;
  const System sys = random_system(p, 77);
  const auto expected = thomas_solve(sys.a, sys.b, sys.c, sys.d);
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  std::vector<double> assembled(static_cast<std::size_t>(p));
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const int r = comm.rank();
    const auto one = [&](const std::vector<double>& v) {
      return std::span<const double>(v.data() + r, 1);
    };
    const auto x = distributed_tridiagonal_solve(comm, one(sys.a), one(sys.b),
                                                 one(sys.c), one(sys.d));
    assembled[static_cast<std::size_t>(r)] = x[0];
  });
  EXPECT_LT(max_abs_diff(assembled, expected), 1e-10);
}

class PeriodicDistributedSweep : public ::testing::TestWithParam<DistCase> {};

TEST_P(PeriodicDistributedSweep, MatchesSerialPeriodicThomas) {
  const auto [p, n_global] = GetParam();
  const System sys = random_system(
      n_global, 900 + static_cast<std::uint64_t>(p * 1000 + n_global), true);
  const auto expected = periodic_thomas_solve(sys.a, sys.b, sys.c, sys.d);

  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  std::vector<double> assembled(static_cast<std::size_t>(n_global));
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const int base = n_global / p;
    const int rem = n_global % p;
    const int mine = base + (comm.rank() < rem ? 1 : 0);
    const int offset = comm.rank() * base + std::min(comm.rank(), rem);
    const auto slice = [&](const std::vector<double>& v) {
      return std::span<const double>(v.data() + offset,
                                     static_cast<std::size_t>(mine));
    };
    const auto x = distributed_periodic_tridiagonal_solve(
        comm, slice(sys.a), slice(sys.b), slice(sys.c), slice(sys.d));
    for (int i = 0; i < mine; ++i)
      assembled[static_cast<std::size_t>(offset + i)] =
          x[static_cast<std::size_t>(i)];
  });
  EXPECT_LT(max_abs_diff(assembled, expected), 1e-8)
      << "p=" << p << " n=" << n_global;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PeriodicDistributedSweep,
    ::testing::Values(DistCase{1, 12}, DistCase{2, 12}, DistCase{4, 12},
                      DistCase{4, 15}, DistCase{8, 24}, DistCase{3, 100},
                      DistCase{6, 13}));

TEST(PeriodicDistributed, ConstantRhsWithDiffusionOperatorIsInvariant) {
  // (I + K L) x = c with L the periodic Laplacian: constants are
  // eigenvectors with eigenvalue 1, so x = c exactly — the property that
  // makes the implicit zonal filter conserve the zonal mean.
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  machine.run(4, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const int mine = 5;
    const double k = 3.7;
    std::vector<double> a(mine, -k), b(mine, 1 + 2 * k), c(mine, -k),
        d(mine, 42.0);
    const auto x =
        distributed_periodic_tridiagonal_solve(comm, a, b, c, d);
    for (double v : x) EXPECT_NEAR(v, 42.0, 1e-10);
  });
}

TEST(Batched, ManySystemsMatchPerSystemSolves) {
  const int p = 4, m = 7, n_local = 6;
  const int n_global = p * n_local;
  std::vector<System> systems;
  for (int q = 0; q < m; ++q)
    systems.push_back(random_system(n_global, 4000 + static_cast<std::uint64_t>(q)));

  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const int offset = comm.rank() * n_local;
    std::vector<double> a, b, c, d;
    for (const System& sys : systems) {
      a.insert(a.end(), sys.a.begin() + offset, sys.a.begin() + offset + n_local);
      b.insert(b.end(), sys.b.begin() + offset, sys.b.begin() + offset + n_local);
      c.insert(c.end(), sys.c.begin() + offset, sys.c.begin() + offset + n_local);
      d.insert(d.end(), sys.d.begin() + offset, sys.d.begin() + offset + n_local);
    }
    const auto batched =
        distributed_tridiagonal_solve_many(comm, m, a, b, c, d);
    for (int q = 0; q < m; ++q) {
      const std::size_t off = static_cast<std::size_t>(q) * n_local;
      const auto single = distributed_tridiagonal_solve(
          comm, std::span<const double>(a.data() + off, n_local),
          std::span<const double>(b.data() + off, n_local),
          std::span<const double>(c.data() + off, n_local),
          std::span<const double>(d.data() + off, n_local));
      for (int i = 0; i < n_local; ++i)
        EXPECT_NEAR(batched[off + static_cast<std::size_t>(i)],
                    single[static_cast<std::size_t>(i)], 1e-12)
            << "system " << q << " row " << i;
    }
  });
}

TEST(Batched, PeriodicManyMatchesSerialReference) {
  const int p = 3, m = 5, n_local = 8;
  const int n_global = p * n_local;
  std::vector<System> systems;
  std::vector<std::vector<double>> expected;
  for (int q = 0; q < m; ++q) {
    systems.push_back(
        random_system(n_global, 5000 + static_cast<std::uint64_t>(q), true));
    expected.push_back(periodic_thomas_solve(systems.back().a,
                                             systems.back().b,
                                             systems.back().c,
                                             systems.back().d));
  }
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(20'000);
  machine.run(p, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const int offset = comm.rank() * n_local;
    std::vector<double> a, b, c, d;
    for (const System& sys : systems) {
      a.insert(a.end(), sys.a.begin() + offset, sys.a.begin() + offset + n_local);
      b.insert(b.end(), sys.b.begin() + offset, sys.b.begin() + offset + n_local);
      c.insert(c.end(), sys.c.begin() + offset, sys.c.begin() + offset + n_local);
      d.insert(d.end(), sys.d.begin() + offset, sys.d.begin() + offset + n_local);
    }
    const auto x =
        distributed_periodic_tridiagonal_solve_many(comm, m, a, b, c, d);
    for (int q = 0; q < m; ++q)
      for (int i = 0; i < n_local; ++i)
        EXPECT_NEAR(x[static_cast<std::size_t>(q) * n_local +
                      static_cast<std::size_t>(i)],
                    expected[static_cast<std::size_t>(q)]
                            [static_cast<std::size_t>(offset + i)],
                    1e-8);
  });
}

TEST(Batched, BatchingSavesMessagesVsPerLineSolves) {
  // The whole point: one batched call sends far fewer messages than m
  // separate calls.
  const int p = 4, m = 20, n_local = 5;
  auto count_messages = [&](bool batched) {
    Machine machine(MachineProfile::ideal());
    machine.set_recv_timeout_ms(20'000);
    const System sys = random_system(p * n_local, 6000, true);
    const auto result = machine.run(p, [&](RankContext& ctx) {
      Communicator comm(ctx);
      const int offset = comm.rank() * n_local;
      std::vector<double> a, b, c, d;
      for (int q = 0; q < m; ++q) {
        a.insert(a.end(), sys.a.begin() + offset, sys.a.begin() + offset + n_local);
        b.insert(b.end(), sys.b.begin() + offset, sys.b.begin() + offset + n_local);
        c.insert(c.end(), sys.c.begin() + offset, sys.c.begin() + offset + n_local);
        d.insert(d.end(), sys.d.begin() + offset, sys.d.begin() + offset + n_local);
      }
      if (batched) {
        (void)distributed_periodic_tridiagonal_solve_many(comm, m, a, b, c, d);
      } else {
        for (int q = 0; q < m; ++q) {
          const std::size_t off = static_cast<std::size_t>(q) * n_local;
          (void)distributed_periodic_tridiagonal_solve(
              comm, std::span<const double>(a.data() + off, n_local),
              std::span<const double>(b.data() + off, n_local),
              std::span<const double>(c.data() + off, n_local),
              std::span<const double>(d.data() + off, n_local));
        }
      }
    });
    return result.total_messages;
  };
  const auto batched = count_messages(true);
  const auto looped = count_messages(false);
  EXPECT_LT(batched * 5, looped);  // at least 5x fewer messages
}

TEST(Distributed, ChargesVirtualTime) {
  Machine machine(MachineProfile::intel_paragon());
  machine.set_recv_timeout_ms(20'000);
  const System sys = random_system(64, 5);
  const auto result = machine.run(4, [&](RankContext& ctx) {
    Communicator comm(ctx);
    const int mine = 16;
    const int offset = comm.rank() * mine;
    const auto slice = [&](const std::vector<double>& v) {
      return std::span<const double>(v.data() + offset,
                                     static_cast<std::size_t>(mine));
    };
    (void)distributed_tridiagonal_solve(comm, slice(sys.a), slice(sys.b),
                                        slice(sys.c), slice(sys.d));
  });
  EXPECT_GT(result.makespan(), 0.0);
  EXPECT_GT(result.total_messages, 0u);
}

}  // namespace
}  // namespace agcm::linsolve
