// Tests for the Extra-P-style performance-model engine (src/perfmodel/).
//
// The fitter is pure arithmetic, so every test here builds a synthetic
// series with a known generating law and checks that model selection
// recovers the *discrete* complexity class exactly (grid exponents are
// artefacts, coefficients are not). Verdict strings and report JSON are
// also deterministic, so they are string-compared directly.
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "perfmodel/compose.hpp"
#include "perfmodel/model.hpp"
#include "perfmodel/predict.hpp"
#include "perfmodel/report.hpp"

namespace agcm::perfmodel {
namespace {

std::vector<double> powers_of_two(int count, double first = 2.0) {
  std::vector<double> x;
  double v = first;
  for (int i = 0; i < count; ++i, v *= 2.0) x.push_back(v);
  return x;
}

std::vector<double> apply(const std::vector<double>& x, double c0, double c1,
                          Hypothesis hyp) {
  std::vector<double> y;
  for (double xi : x) y.push_back(c0 + c1 * basis(hyp, xi));
  return y;
}

// --- basis / dominates / labels -------------------------------------------

TEST(PerfModelBasis, MatchesClosedFormAndClampsLogAtOne) {
  EXPECT_DOUBLE_EQ(basis({2.0, 0}, 3.0), 9.0);
  EXPECT_DOUBLE_EQ(basis({1.0, 1}, 8.0), 8.0 * 3.0);
  EXPECT_DOUBLE_EQ(basis({0.5, 2}, 4.0), 2.0 * 4.0);
  // log2 clamped at zero for x <= 1, so phi(1) = 0 whenever b > 0.
  EXPECT_DOUBLE_EQ(basis({1.0, 1}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(basis({0.0, 0}, 1.0), 1.0);
}

TEST(PerfModelBasis, DominatesOrdersByPowerThenLogPower) {
  EXPECT_TRUE(dominates({2.0, 0}, {1.0, 2}));   // power beats any log
  EXPECT_TRUE(dominates({1.0, 1}, {1.0, 0}));   // equal power: log decides
  EXPECT_FALSE(dominates({1.0, 0}, {1.0, 0}));  // strict: not reflexive
  EXPECT_FALSE(dominates({1.0, 0}, {2.0, 0}));
}

TEST(PerfModelBasis, ComplexityLabelsAreCanonical) {
  EXPECT_EQ(complexity_label({0.0, 0}), "1");
  EXPECT_EQ(complexity_label({1.0, 0}), "x");
  EXPECT_EQ(complexity_label({2.0, 0}), "x^2");
  EXPECT_EQ(complexity_label({1.0, 1}), "x * log2(x)");
  EXPECT_EQ(complexity_label({0.0, 2}), "log2(x)^2");
}

TEST(PerfModelBasis, DefaultGridIsComplexityAscending) {
  const auto grid = default_grid();
  ASSERT_EQ(grid.size(), 13u * 3u);  // a in 0..3 step .25, b in 0..2
  EXPECT_EQ(grid.front(), (Hypothesis{0.0, 0}));
  EXPECT_EQ(grid.back(), (Hypothesis{3.0, 2}));
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_TRUE(dominates(grid[i], grid[i - 1]))
        << "grid not ascending at index " << i;
}

// --- model selection on synthetic series ----------------------------------

TEST(PerfModelFit, RecoversPureQuadratic) {
  const auto x = powers_of_two(6);
  const FitResult fit = fit_model(x, apply(x, 0.0, 3.0, {2.0, 0}));
  EXPECT_EQ(fit.hyp, (Hypothesis{2.0, 0}));
  EXPECT_NEAR(fit.c1, 3.0, 1e-9);
  EXPECT_NEAR(fit.c0, 0.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_EQ(fit.label(), "x^2");
}

TEST(PerfModelFit, RecoversNLogNWithOffset) {
  const auto x = powers_of_two(6);  // exact log2 values at powers of two
  const FitResult fit = fit_model(x, apply(x, 7.0, 5.0, {1.0, 1}));
  EXPECT_EQ(fit.hyp, (Hypothesis{1.0, 1}));
  EXPECT_NEAR(fit.c0, 7.0, 1e-8);
  EXPECT_NEAR(fit.c1, 5.0, 1e-9);
  EXPECT_EQ(fit.label(), "x * log2(x)");
}

TEST(PerfModelFit, ConstantSeriesSelectsConstantNotHighOrderTie) {
  // Every hypothesis threads a flat line with c1 = 0; the strict-<
  // complexity-ascending scan must keep (0,0), not any later tie.
  const std::vector<double> x = {2, 4, 8, 16, 32};
  const std::vector<double> y = {4.5, 4.5, 4.5, 4.5, 4.5};
  const FitResult fit = fit_model(x, y);
  EXPECT_EQ(fit.hyp, (Hypothesis{0.0, 0}));
  EXPECT_DOUBLE_EQ(fit.c0, 4.5);
  EXPECT_DOUBLE_EQ(fit.evaluate(64.0), 4.5);
}

TEST(PerfModelFit, DecreasingSeriesFallsBackToConstant) {
  // Costs are modelled as non-decreasing: every growing hypothesis would
  // need c1 < 0 and is rejected, leaving the constant fit.
  const std::vector<double> x = {2, 4, 8, 16, 32};
  const std::vector<double> y = {10.0, 5.0, 2.5, 1.25, 0.625};
  const FitResult fit = fit_model(x, y);
  EXPECT_EQ(fit.hyp, (Hypothesis{0.0, 0}));
}

TEST(PerfModelFit, EvaluateReproducesInputsOnExactFit) {
  const auto x = powers_of_two(5);
  const auto y = apply(x, 2.0, 0.5, {1.5, 0});
  const FitResult fit = fit_model(x, y);
  EXPECT_EQ(fit.hyp, (Hypothesis{1.5, 0}));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(fit.evaluate(x[i]), y[i], 1e-7 * y[i]);
}

TEST(PerfModelFit, RejectsDegenerateInputs) {
  EXPECT_THROW(fit_model({1, 2}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(fit_model({0, 1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(fit_model({-1, 1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(fit_model({2, 4, 8}, {1, 2}), std::invalid_argument);
}

TEST(PerfModelFit, FitHypothesisRejectsNegativeSlopeAndTinySamples) {
  const std::vector<double> x = {2, 4, 8, 16};
  const std::vector<double> y = {8, 4, 2, 1};
  EXPECT_FALSE(fit_hypothesis(x, y, {1.0, 0}).has_value());  // c1 < 0
  EXPECT_FALSE(fit_hypothesis({2.0}, {1.0}, {1.0, 0}).has_value());
  const auto ok = fit_hypothesis(x, y, {0.0, 0});  // constant always fits
  ASSERT_TRUE(ok.has_value());
  EXPECT_DOUBLE_EQ(ok->c0, 3.75);
}

// --- verdicts -------------------------------------------------------------

Expectation quadratic_window() {
  Expectation e;
  e.expected = "~ x^2";
  e.min_a = 1.75;
  e.max_a = 2.25;
  e.min_b = 0;
  e.max_b = 1;
  e.min_r2 = 0.97;
  return e;
}

TEST(PerfModelVerdict, PassesInsideWindowWithDeterministicReason) {
  const auto x = powers_of_two(6);
  const FitResult fit = fit_model(x, apply(x, 0.0, 2.0, {2.0, 0}));
  const Verdict v = check_fit(fit, quadratic_window());
  EXPECT_TRUE(v.pass);
  // The reason is built from grid exponents and pre-rounded thresholds
  // only, so it is byte-stable.
  EXPECT_NE(v.reason.find("x^2"), std::string::npos) << v.reason;
}

TEST(PerfModelVerdict, FailsOutsideExponentWindow) {
  const auto x = powers_of_two(6);
  const FitResult fit = fit_model(x, apply(x, 0.0, 2.0, {1.0, 0}));
  const Verdict v = check_fit(fit, quadratic_window());
  EXPECT_FALSE(v.pass);
  EXPECT_NE(v.reason.find("exponent"), std::string::npos) << v.reason;
}

TEST(PerfModelVerdict, FailsOnLowR2EvenWithRightExponent) {
  // Quadratic trend plus violent noise: the class may still be x^2-ish,
  // so force the failure through the R^2 floor.
  const std::vector<double> x = {2, 4, 8, 16, 32, 64};
  std::vector<double> y;
  for (std::size_t i = 0; i < x.size(); ++i)
    y.push_back(x[i] * x[i] * (i % 2 == 0 ? 3.0 : 0.2));
  Expectation e = quadratic_window();
  e.min_a = 0.0;
  e.max_a = 3.0;
  e.max_b = 2;
  e.min_r2 = 0.999;
  const FitResult fit = fit_model(x, y);
  ASSERT_LT(fit.r2, 0.999);
  EXPECT_FALSE(check_fit(fit, e).pass);
}

// --- report assembly ------------------------------------------------------

TEST(PerfModelReport, AnalyzePipelineAndAllPassLogic) {
  const auto x = powers_of_two(6);
  Series s;
  s.phase = "filter.convolution-ring";
  s.parameter = "nlon";
  s.metric = "max_rank_sec";
  s.x = x;
  s.y = apply(x, 0.0, 1.5, {2.0, 0});

  ModelReport report("unit");
  report.set_config("machine", trace::JsonValue("test"));
  report.add_phase(analyze(s, quadratic_window()));
  EXPECT_TRUE(report.all_pass());

  report.add_gate("imbalance_after_lb", false, "12% > 8%");
  EXPECT_FALSE(report.all_pass());  // one failing gate sinks the report
}

TEST(PerfModelReport, JsonIsSchemaTaggedInsertionOrderedAndDeterministic) {
  const auto x = powers_of_two(5);
  Series s;
  s.phase = "filter.fft-lines";
  s.parameter = "nlon";
  s.metric = "max_rank_sec";
  s.x = x;
  s.y = apply(x, 0.0, 2.0, {1.0, 1});
  Expectation e;
  e.expected = "~ x log x";
  e.min_a = 0.75;
  e.max_a = 1.25;
  e.min_b = 0;
  e.max_b = 2;

  auto build = [&] {
    ModelReport report("unit");
    report.set_config("mesh", trace::JsonValue("1x4"));
    report.add_phase(analyze(s, e));
    report.add_gate("g", true, "ok");
    return report.to_json().dump_pretty();
  };
  const std::string once = build();
  EXPECT_EQ(once, build());  // byte-identical across rebuilds

  std::string error;
  const auto parsed = trace::JsonValue::parse(once, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const trace::JsonValue& doc = *parsed;
  EXPECT_EQ(doc.find("schema")->as_string(), "agcm-perfmodel-v1");
  EXPECT_EQ(doc.find("report")->as_string(), "unit");
  EXPECT_TRUE(doc.find("all_pass")->as_bool());
  ASSERT_EQ(doc.find("phases")->items().size(), 1u);
  const trace::JsonValue& phase = doc.find("phases")->items().front();
  EXPECT_EQ(phase.find("phase")->as_string(), "filter.fft-lines");
  const trace::JsonValue& model = *phase.find("model");
  EXPECT_EQ(model.find("complexity")->as_string(), "x * log2(x)");
  EXPECT_DOUBLE_EQ(model.find("exponent_a")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(model.find("log_power_b")->as_number(), 1.0);
  EXPECT_TRUE(phase.find("verdict")->find("pass")->as_bool());
  EXPECT_EQ(phase.find("series")->find("x")->items().size(), x.size());
  EXPECT_EQ(doc.find("gates")->items().size(), 1u);
}

TEST(PerfModelReport, FitJsonCarriesAllSentinelComparedFields) {
  const auto x = powers_of_two(5);
  const FitResult fit = fit_model(x, apply(x, 1.0, 2.0, {1.0, 0}));
  const trace::JsonValue j = fit_json(fit);
  for (const char* key : {"complexity", "exponent_a", "log_power_b", "c0",
                          "c1", "r2", "rmse", "cv_rmse"})
    EXPECT_NE(j.find(key), nullptr) << "missing " << key;
  EXPECT_EQ(j.find("complexity")->as_string(), "x");
}

// --- composition operators (compose.hpp) ----------------------------------

/// A mid-size T3D-flavoured point so every driver is non-trivial.
Point compose_point(int nlon = 96, int nlat = 64, int nlev = 5, int rows = 2,
                    int cols = 4) {
  Point p;
  p.nlon = nlon;
  p.nlat = nlat;
  p.nlev = nlev;
  p.mesh_rows = rows;
  p.mesh_cols = cols;
  p.machine = "Cray T3D";
  p.filter_backend = "fft-load-balanced";
  p.flops_per_sec = 9.4e6;
  p.mem_bytes_per_sec = 3.0e8;
  p.msg_latency_sec = 1.2e-4;
  p.link_bytes_per_sec = 2.7e7;
  p.send_overhead_sec = 4.0e-5;
  p.recv_overhead_sec = 4.0e-5;
  p.loop_startup_elems = 8.0;
  return p;
}

TEST(PerfCompose, SequenceIsAssociative) {
  const Point p = compose_point();
  const Node a = leaf("points_sec", 2.0);
  const Node b = ring("ranks", {leaf("msg_overhead_sec", 3.0)});
  const Node c = leaf("plane_sec", 0.5);
  const double left = evaluate(sequence({a, sequence({b, c})}), p);
  const double right = evaluate(sequence({sequence({a, b}), c}), p);
  const double flat = evaluate(sequence({a, b, c}), p);
  EXPECT_DOUBLE_EQ(left, right);
  EXPECT_DOUBLE_EQ(left, flat);
  EXPECT_GT(flat, 0.0);
}

TEST(PerfCompose, ConcurrentIsMaxAndMonotoneInWeights) {
  const Point p = compose_point();
  const Node a = leaf("points_sec", 1.0);
  const Node b = leaf("msg_overhead_sec", 1.0);
  const double va = evaluate(a, p);
  const double vb = evaluate(b, p);
  EXPECT_DOUBLE_EQ(evaluate(concurrent({a, b}), p), std::max(va, vb));
  // Scaling any branch's weight up can only raise (or keep) the max.
  double prev = evaluate(concurrent({a, b}), p);
  for (double w = 1.0; w <= 1024.0; w *= 4.0) {
    const double now = evaluate(concurrent({a, leaf("msg_overhead_sec", w)}), p);
    EXPECT_GE(now, prev);
    EXPECT_GE(now, va);
    prev = now;
  }
}

TEST(PerfCompose, HopCountsMatchClosedForms) {
  for (const double e : {1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 16.0, 17.0}) {
    EXPECT_DOUBLE_EQ(ring_hops(e), e - 1.0) << "e=" << e;
    EXPECT_DOUBLE_EQ(tree_hops(e), e <= 1.0 ? 0.0 : std::ceil(std::log2(e)))
        << "e=" << e;
    EXPECT_DOUBLE_EQ(pairwise_rounds(e), e) << "e=" << e;
  }
  EXPECT_DOUBLE_EQ(ring_hops(1.0), 0.0);
  EXPECT_DOUBLE_EQ(ring_hops(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tree_hops(16.0), 4.0);
  EXPECT_DOUBLE_EQ(tree_hops(17.0), 5.0);

  // The operators apply exactly these multipliers to the unit driver.
  for (int rows : {1, 2, 4}) {
    for (int cols : {1, 2, 3, 4}) {
      const Point p = compose_point(96, 64, 5, rows, cols);
      const double e = p.ranks();
      EXPECT_DOUBLE_EQ(evaluate(ring("ranks", {leaf("unit")}), p),
                       ring_hops(e));
      EXPECT_DOUBLE_EQ(evaluate(tree("ranks", {leaf("unit")}), p),
                       tree_hops(e));
      // Transpose: (e-1) messages plus (e-1)/e of the volume; zero on one
      // rank (nothing crosses the wire).
      const double want =
          e <= 1.0 ? 0.0 : (e - 1.0) * 1.0 + (e - 1.0) / e * 1.0;
      EXPECT_DOUBLE_EQ(
          evaluate(transpose("ranks", {leaf("unit"), leaf("unit")}), p),
          want);
    }
  }
  Point p = compose_point();
  p.lb_rounds = 3;
  EXPECT_DOUBLE_EQ(evaluate(pairwise("lb_rounds", {leaf("unit")}), p), 3.0);
  p.lb_rounds = 0;
  EXPECT_DOUBLE_EQ(evaluate(pairwise("lb_rounds", {leaf("unit")}), p), 0.0);
}

TEST(PerfCompose, UnknownDriverAndExtentThrow) {
  const Point p = compose_point();
  EXPECT_THROW(driver_value("no_such_driver", p), std::invalid_argument);
  EXPECT_THROW(extent_value("no_such_extent", p), std::invalid_argument);
  EXPECT_THROW(evaluate(leaf("no_such_driver"), p), std::invalid_argument);
  // Every documented driver evaluates finite and non-negative.
  for (const std::string& name : driver_names()) {
    const double v = driver_value(name, p);
    EXPECT_TRUE(std::isfinite(v)) << name;
    EXPECT_GE(v, 0.0) << name;
  }
}

TEST(PerfCompose, NodeJsonRoundTripsByteStable) {
  const Node tree_node = sequence(
      {leaf("points_sec", 2.5, {1.0, 1}),
       ring("ranks", {leaf("msg_overhead_sec", 0.75)}),
       tree("mesh_cols", {leaf("unit", 1.0)}),
       transpose("mesh_rows", {leaf("msg_overhead_sec"), leaf("plane_sec")}),
       pairwise("lb_rounds", {leaf("pair_bytes_sec", 3.0)}),
       concurrent({leaf("physics_mean_sec"), leaf("physics_sunlit_max_sec")})});
  const trace::JsonValue j = node_json(tree_node);
  const Node back = node_from_json(j);
  EXPECT_EQ(j.dump(), node_json(back).dump());
  const Point p = compose_point();
  EXPECT_DOUBLE_EQ(evaluate(tree_node, p), evaluate(back, p));

  trace::JsonValue bad = trace::JsonValue::object();
  bad.set("op", trace::JsonValue("no-such-op"));
  EXPECT_THROW(node_from_json(bad), std::invalid_argument);
}

TEST(PerfCompose, LinearTermsRejectConcurrentAndMatchEvaluate) {
  const Point p = compose_point();
  Node comp = sequence({leaf("points_sec"),
                        ring("ranks", {leaf("msg_overhead_sec")})});
  const std::vector<double> terms = linear_terms(comp, p);
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_DOUBLE_EQ(terms[0] + terms[1], evaluate(comp, p));

  Node with_max = sequence({concurrent({leaf("unit")})});
  EXPECT_THROW(linear_terms(with_max, p), std::invalid_argument);
}

TEST(PerfCompose, FitCompositeRecoversSyntheticLawExactly) {
  // y = c0 + w0 * points_sec + w1 * ring_hops(ranks) * msg_overhead_sec,
  // sampled over a geometry/mesh grid: the joint NNLS must give the exact
  // generating coefficients back (the design is well-conditioned).
  const double kC0 = 2.0e-3, kW0 = 1.5, kW1 = 4.0;
  Node model = sequence(
      {leaf("points_sec"), ring("ranks", {leaf("msg_overhead_sec")})});
  std::vector<Point> points;
  std::vector<double> y;
  for (int nlon : {48, 72, 96, 144}) {
    for (int rows : {1, 2}) {
      for (int cols : {1, 2, 4}) {
        Point p = compose_point(nlon, 2 * nlon / 3, 5, rows, cols);
        const double pts = driver_value("points_sec", p);
        const double msg = driver_value("msg_overhead_sec", p);
        points.push_back(p);
        y.push_back(kC0 + kW0 * pts + kW1 * ring_hops(p.ranks()) * msg);
      }
    }
  }
  const CompositeFit fit = fit_composite(model, points, y);
  EXPECT_NEAR(fit.c0, kC0, 1e-9);
  EXPECT_NEAR(model.children[0].weight, kW0, 1e-6);
  EXPECT_NEAR(model.children[1].children[0].weight, kW1, 1e-6);
  EXPECT_GT(fit.r2, 1.0 - 1e-9);
  EXPECT_EQ(fit.terms_used, 2);
  // The refitted tree reproduces every training sample.
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_NEAR(evaluate(model, points[i]) + fit.c0, y[i],
                1e-9 * std::max(1.0, std::abs(y[i])));

  Node degenerate = leaf("unit");
  EXPECT_THROW(fit_composite(degenerate, {compose_point()}, {1.0}),
               std::invalid_argument);
}

// --- whole-app predictor (predict.hpp) ------------------------------------

/// Synthetic observations whose fd and halo components follow exact
/// composite laws over the phase skeletons' own drivers. Filter and
/// physics are disabled so only the unconditional phases train.
std::vector<Observation> synthetic_observations() {
  std::vector<Observation> obs;
  for (int nlon : {48, 72, 96, 144}) {
    for (int rows : {1, 2}) {
      for (int cols : {1, 2, 4}) {
        Point p = compose_point(nlon, 2 * nlon / 3, 5, rows, cols);
        Observation o;
        o.point = p;
        o.filter_enabled = false;
        o.physics_enabled = false;
        o.actual.fd = 1.0e-3 + 2.0 * driver_value("points_sec", p) +
                      0.5 * driver_value("plane_sec", p);
        o.actual.halo = p.ranks() > 1
                            ? 3.0 * driver_value("halo_msgs_sec", p) +
                                  1.0 * driver_value("halo_bytes_sec", p)
                            : 0.0;
        obs.push_back(o);
      }
    }
  }
  return obs;
}

TEST(PerfPredict, RecoversSyntheticCompositeLawsThroughTraining) {
  const std::vector<Observation> obs = synthetic_observations();
  const PredictModel model = train_model(obs);
  ASSERT_NE(model.find("fd", ""), nullptr);
  ASSERT_NE(model.find("halo", ""), nullptr);
  EXPECT_GT(model.find("fd", "")->r2, 1.0 - 1e-9);

  // Exact in-sample recovery, including the structural halo zero on one
  // rank, and recovery at a held-out geometry never trained on.
  Point held_out = compose_point(120, 80, 5, 2, 2);
  const double want_fd = 1.0e-3 +
                         2.0 * driver_value("points_sec", held_out) +
                         0.5 * driver_value("plane_sec", held_out);
  const Prediction at = predict(model, held_out, /*filter_enabled=*/false,
                                /*physics_enabled=*/false);
  EXPECT_NEAR(at.fd, want_fd, 1e-6 * want_fd);
  EXPECT_DOUBLE_EQ(at.filter, 0.0);
  EXPECT_DOUBLE_EQ(at.physics_compute, 0.0);
  EXPECT_DOUBLE_EQ(at.physics_balance, 0.0);

  Point one_rank = compose_point(96, 64, 5, 1, 1);
  EXPECT_DOUBLE_EQ(
      predict(model, one_rank, false, false).halo, 0.0);

  // An untrained filter backend is an error, not a silent zero.
  Point p = compose_point();
  EXPECT_THROW(predict(model, p, /*filter_enabled=*/true, false),
               std::invalid_argument);
}

TEST(PerfPredict, ModelJsonRoundTripPreservesPredictions) {
  const PredictModel model = train_model(synthetic_observations());
  const trace::JsonValue j = model_to_json(model);
  const PredictModel back = model_from_json(j);
  EXPECT_EQ(j.dump(), model_to_json(back).dump());
  for (int nlon : {48, 120, 144}) {
    const Point p = compose_point(nlon, 2 * nlon / 3, 5, 2, 4);
    const Prediction a = predict(model, p, false, false);
    const Prediction b = predict(back, p, false, false);
    EXPECT_DOUBLE_EQ(a.fd, b.fd);
    EXPECT_DOUBLE_EQ(a.halo, b.halo);
    EXPECT_DOUBLE_EQ(a.total(), b.total());
  }
}

TEST(PerfPredict, PhaseSkeletonsExistForEveryBackendAndRejectUnknown) {
  for (const char* backend :
       {"fft-transpose", "fft-load-balanced", "convolution-tree",
        "implicit-zonal", "convolution-ring", "convolution-partitioned"}) {
    const Node skel = phase_skeleton("filter", backend);
    EXPECT_FALSE(collect_leaves(skel).empty()) << backend;
  }
  EXPECT_THROW(phase_skeleton("filter", "no-such-backend"),
               std::invalid_argument);
}

}  // namespace
}  // namespace agcm::perfmodel
