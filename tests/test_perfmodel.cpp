// Tests for the Extra-P-style performance-model engine (src/perfmodel/).
//
// The fitter is pure arithmetic, so every test here builds a synthetic
// series with a known generating law and checks that model selection
// recovers the *discrete* complexity class exactly (grid exponents are
// artefacts, coefficients are not). Verdict strings and report JSON are
// also deterministic, so they are string-compared directly.
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "perfmodel/model.hpp"
#include "perfmodel/report.hpp"

namespace agcm::perfmodel {
namespace {

std::vector<double> powers_of_two(int count, double first = 2.0) {
  std::vector<double> x;
  double v = first;
  for (int i = 0; i < count; ++i, v *= 2.0) x.push_back(v);
  return x;
}

std::vector<double> apply(const std::vector<double>& x, double c0, double c1,
                          Hypothesis hyp) {
  std::vector<double> y;
  for (double xi : x) y.push_back(c0 + c1 * basis(hyp, xi));
  return y;
}

// --- basis / dominates / labels -------------------------------------------

TEST(PerfModelBasis, MatchesClosedFormAndClampsLogAtOne) {
  EXPECT_DOUBLE_EQ(basis({2.0, 0}, 3.0), 9.0);
  EXPECT_DOUBLE_EQ(basis({1.0, 1}, 8.0), 8.0 * 3.0);
  EXPECT_DOUBLE_EQ(basis({0.5, 2}, 4.0), 2.0 * 4.0);
  // log2 clamped at zero for x <= 1, so phi(1) = 0 whenever b > 0.
  EXPECT_DOUBLE_EQ(basis({1.0, 1}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(basis({0.0, 0}, 1.0), 1.0);
}

TEST(PerfModelBasis, DominatesOrdersByPowerThenLogPower) {
  EXPECT_TRUE(dominates({2.0, 0}, {1.0, 2}));   // power beats any log
  EXPECT_TRUE(dominates({1.0, 1}, {1.0, 0}));   // equal power: log decides
  EXPECT_FALSE(dominates({1.0, 0}, {1.0, 0}));  // strict: not reflexive
  EXPECT_FALSE(dominates({1.0, 0}, {2.0, 0}));
}

TEST(PerfModelBasis, ComplexityLabelsAreCanonical) {
  EXPECT_EQ(complexity_label({0.0, 0}), "1");
  EXPECT_EQ(complexity_label({1.0, 0}), "x");
  EXPECT_EQ(complexity_label({2.0, 0}), "x^2");
  EXPECT_EQ(complexity_label({1.0, 1}), "x * log2(x)");
  EXPECT_EQ(complexity_label({0.0, 2}), "log2(x)^2");
}

TEST(PerfModelBasis, DefaultGridIsComplexityAscending) {
  const auto grid = default_grid();
  ASSERT_EQ(grid.size(), 13u * 3u);  // a in 0..3 step .25, b in 0..2
  EXPECT_EQ(grid.front(), (Hypothesis{0.0, 0}));
  EXPECT_EQ(grid.back(), (Hypothesis{3.0, 2}));
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_TRUE(dominates(grid[i], grid[i - 1]))
        << "grid not ascending at index " << i;
}

// --- model selection on synthetic series ----------------------------------

TEST(PerfModelFit, RecoversPureQuadratic) {
  const auto x = powers_of_two(6);
  const FitResult fit = fit_model(x, apply(x, 0.0, 3.0, {2.0, 0}));
  EXPECT_EQ(fit.hyp, (Hypothesis{2.0, 0}));
  EXPECT_NEAR(fit.c1, 3.0, 1e-9);
  EXPECT_NEAR(fit.c0, 0.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_EQ(fit.label(), "x^2");
}

TEST(PerfModelFit, RecoversNLogNWithOffset) {
  const auto x = powers_of_two(6);  // exact log2 values at powers of two
  const FitResult fit = fit_model(x, apply(x, 7.0, 5.0, {1.0, 1}));
  EXPECT_EQ(fit.hyp, (Hypothesis{1.0, 1}));
  EXPECT_NEAR(fit.c0, 7.0, 1e-8);
  EXPECT_NEAR(fit.c1, 5.0, 1e-9);
  EXPECT_EQ(fit.label(), "x * log2(x)");
}

TEST(PerfModelFit, ConstantSeriesSelectsConstantNotHighOrderTie) {
  // Every hypothesis threads a flat line with c1 = 0; the strict-<
  // complexity-ascending scan must keep (0,0), not any later tie.
  const std::vector<double> x = {2, 4, 8, 16, 32};
  const std::vector<double> y = {4.5, 4.5, 4.5, 4.5, 4.5};
  const FitResult fit = fit_model(x, y);
  EXPECT_EQ(fit.hyp, (Hypothesis{0.0, 0}));
  EXPECT_DOUBLE_EQ(fit.c0, 4.5);
  EXPECT_DOUBLE_EQ(fit.evaluate(64.0), 4.5);
}

TEST(PerfModelFit, DecreasingSeriesFallsBackToConstant) {
  // Costs are modelled as non-decreasing: every growing hypothesis would
  // need c1 < 0 and is rejected, leaving the constant fit.
  const std::vector<double> x = {2, 4, 8, 16, 32};
  const std::vector<double> y = {10.0, 5.0, 2.5, 1.25, 0.625};
  const FitResult fit = fit_model(x, y);
  EXPECT_EQ(fit.hyp, (Hypothesis{0.0, 0}));
}

TEST(PerfModelFit, EvaluateReproducesInputsOnExactFit) {
  const auto x = powers_of_two(5);
  const auto y = apply(x, 2.0, 0.5, {1.5, 0});
  const FitResult fit = fit_model(x, y);
  EXPECT_EQ(fit.hyp, (Hypothesis{1.5, 0}));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(fit.evaluate(x[i]), y[i], 1e-7 * y[i]);
}

TEST(PerfModelFit, RejectsDegenerateInputs) {
  EXPECT_THROW(fit_model({1, 2}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(fit_model({0, 1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(fit_model({-1, 1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(fit_model({2, 4, 8}, {1, 2}), std::invalid_argument);
}

TEST(PerfModelFit, FitHypothesisRejectsNegativeSlopeAndTinySamples) {
  const std::vector<double> x = {2, 4, 8, 16};
  const std::vector<double> y = {8, 4, 2, 1};
  EXPECT_FALSE(fit_hypothesis(x, y, {1.0, 0}).has_value());  // c1 < 0
  EXPECT_FALSE(fit_hypothesis({2.0}, {1.0}, {1.0, 0}).has_value());
  const auto ok = fit_hypothesis(x, y, {0.0, 0});  // constant always fits
  ASSERT_TRUE(ok.has_value());
  EXPECT_DOUBLE_EQ(ok->c0, 3.75);
}

// --- verdicts -------------------------------------------------------------

Expectation quadratic_window() {
  Expectation e;
  e.expected = "~ x^2";
  e.min_a = 1.75;
  e.max_a = 2.25;
  e.min_b = 0;
  e.max_b = 1;
  e.min_r2 = 0.97;
  return e;
}

TEST(PerfModelVerdict, PassesInsideWindowWithDeterministicReason) {
  const auto x = powers_of_two(6);
  const FitResult fit = fit_model(x, apply(x, 0.0, 2.0, {2.0, 0}));
  const Verdict v = check_fit(fit, quadratic_window());
  EXPECT_TRUE(v.pass);
  // The reason is built from grid exponents and pre-rounded thresholds
  // only, so it is byte-stable.
  EXPECT_NE(v.reason.find("x^2"), std::string::npos) << v.reason;
}

TEST(PerfModelVerdict, FailsOutsideExponentWindow) {
  const auto x = powers_of_two(6);
  const FitResult fit = fit_model(x, apply(x, 0.0, 2.0, {1.0, 0}));
  const Verdict v = check_fit(fit, quadratic_window());
  EXPECT_FALSE(v.pass);
  EXPECT_NE(v.reason.find("exponent"), std::string::npos) << v.reason;
}

TEST(PerfModelVerdict, FailsOnLowR2EvenWithRightExponent) {
  // Quadratic trend plus violent noise: the class may still be x^2-ish,
  // so force the failure through the R^2 floor.
  const std::vector<double> x = {2, 4, 8, 16, 32, 64};
  std::vector<double> y;
  for (std::size_t i = 0; i < x.size(); ++i)
    y.push_back(x[i] * x[i] * (i % 2 == 0 ? 3.0 : 0.2));
  Expectation e = quadratic_window();
  e.min_a = 0.0;
  e.max_a = 3.0;
  e.max_b = 2;
  e.min_r2 = 0.999;
  const FitResult fit = fit_model(x, y);
  ASSERT_LT(fit.r2, 0.999);
  EXPECT_FALSE(check_fit(fit, e).pass);
}

// --- report assembly ------------------------------------------------------

TEST(PerfModelReport, AnalyzePipelineAndAllPassLogic) {
  const auto x = powers_of_two(6);
  Series s;
  s.phase = "filter.convolution-ring";
  s.parameter = "nlon";
  s.metric = "max_rank_sec";
  s.x = x;
  s.y = apply(x, 0.0, 1.5, {2.0, 0});

  ModelReport report("unit");
  report.set_config("machine", trace::JsonValue("test"));
  report.add_phase(analyze(s, quadratic_window()));
  EXPECT_TRUE(report.all_pass());

  report.add_gate("imbalance_after_lb", false, "12% > 8%");
  EXPECT_FALSE(report.all_pass());  // one failing gate sinks the report
}

TEST(PerfModelReport, JsonIsSchemaTaggedInsertionOrderedAndDeterministic) {
  const auto x = powers_of_two(5);
  Series s;
  s.phase = "filter.fft-lines";
  s.parameter = "nlon";
  s.metric = "max_rank_sec";
  s.x = x;
  s.y = apply(x, 0.0, 2.0, {1.0, 1});
  Expectation e;
  e.expected = "~ x log x";
  e.min_a = 0.75;
  e.max_a = 1.25;
  e.min_b = 0;
  e.max_b = 2;

  auto build = [&] {
    ModelReport report("unit");
    report.set_config("mesh", trace::JsonValue("1x4"));
    report.add_phase(analyze(s, e));
    report.add_gate("g", true, "ok");
    return report.to_json().dump_pretty();
  };
  const std::string once = build();
  EXPECT_EQ(once, build());  // byte-identical across rebuilds

  std::string error;
  const auto parsed = trace::JsonValue::parse(once, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const trace::JsonValue& doc = *parsed;
  EXPECT_EQ(doc.find("schema")->as_string(), "agcm-perfmodel-v1");
  EXPECT_EQ(doc.find("report")->as_string(), "unit");
  EXPECT_TRUE(doc.find("all_pass")->as_bool());
  ASSERT_EQ(doc.find("phases")->items().size(), 1u);
  const trace::JsonValue& phase = doc.find("phases")->items().front();
  EXPECT_EQ(phase.find("phase")->as_string(), "filter.fft-lines");
  const trace::JsonValue& model = *phase.find("model");
  EXPECT_EQ(model.find("complexity")->as_string(), "x * log2(x)");
  EXPECT_DOUBLE_EQ(model.find("exponent_a")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(model.find("log_power_b")->as_number(), 1.0);
  EXPECT_TRUE(phase.find("verdict")->find("pass")->as_bool());
  EXPECT_EQ(phase.find("series")->find("x")->items().size(), x.size());
  EXPECT_EQ(doc.find("gates")->items().size(), 1u);
}

TEST(PerfModelReport, FitJsonCarriesAllSentinelComparedFields) {
  const auto x = powers_of_two(5);
  const FitResult fit = fit_model(x, apply(x, 1.0, 2.0, {1.0, 0}));
  const trace::JsonValue j = fit_json(fit);
  for (const char* key : {"complexity", "exponent_a", "log_power_b", "c0",
                          "c1", "r2", "rmse", "cv_rmse"})
    EXPECT_NE(j.find(key), nullptr) << "missing " << key;
  EXPECT_EQ(j.find("complexity")->as_string(), "x");
}

}  // namespace
}  // namespace agcm::perfmodel
