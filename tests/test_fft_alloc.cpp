// Allocation-freedom test: after a warm-up call at a given length, no FFT
// or FFT-filter entry point may touch the heap (ISSUE 2 acceptance
// criterion; the scratch lives in the thread-local fft::FftWorkspace).
//
// The check hooks the global operator new/delete with a counting wrapper.
// This lives in its own test binary so the hooks cannot perturb the other
// suites. Counts are sampled into plain locals around the measured region
// and asserted afterwards, so the gtest machinery's own allocations never
// leak into the measurement.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "fft/fft.hpp"
#include "fft/workspace.hpp"
#include "filter/bank.hpp"
#include "filter/serial.hpp"
#include "grid/latlon.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::size_t> g_new_calls{0};
}  // namespace

// Counting global allocator: malloc passthrough (sanitizer-friendly — ASan
// still sees the underlying malloc/free).
void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               ((size + static_cast<std::size_t>(align) - 1) /
                                static_cast<std::size_t>(align)) *
                                   static_cast<std::size_t>(align));
  if (p) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace agcm::fft {
namespace {

std::size_t allocs() { return g_new_calls.load(std::memory_order_relaxed); }

TEST(AllocationHook, CountsHeapTraffic) {
  const std::size_t before = allocs();
  auto* v = new std::vector<double>(1000);
  const std::size_t after = allocs();
  delete v;
  EXPECT_GE(after - before, 2u);  // the vector object + its storage
}

TEST(FftAllocFree, TransformsAfterWarmup) {
  const int n = 144;
  auto& ws = FftWorkspace::local();
  const FftPlan& plan = ws.plan(n);

  Rng rng(11);
  std::vector<Complex> z(static_cast<std::size_t>(n));
  std::vector<double> x(static_cast<std::size_t>(n)), y(x.size());
  std::vector<double> x2(x.size()), y2(y.size());
  std::vector<Complex> sx(x.size()), sy(y.size());
  for (auto& v : z) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  for (double& v : y) v = rng.uniform(-1.0, 1.0);

  // Warm-up: grows the workspace buffers once.
  plan.forward(z);
  plan.inverse(z);
  plan.forward_real(x, sx);
  plan.inverse_to_real(sx, x2);
  plan.forward_real_pair(x, y, sx, sy);
  plan.inverse_to_real_pair(sx, sy, x2, y2);

  const std::size_t before = allocs();
  plan.forward(z);
  plan.inverse(z);
  plan.forward_real(x, sx);
  plan.inverse_to_real(sx, x2);
  plan.forward_real_pair(x, y, sx, sy);
  plan.inverse_to_real_pair(sx, sy, x2, y2);
  const std::size_t after = allocs();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations on warmed-up FFT paths";
}

TEST(FftAllocFree, FilterKernelsAfterWarmup) {
  const grid::LatLonGrid grid(144, 90, 3);
  const filter::FilterBank bank(
      grid, {{"u", filter::FilterKind::kStrong},
             {"t", filter::FilterKind::kWeak}});
  auto& ws = FftWorkspace::local();
  const FftPlan& plan = ws.plan(grid.nlon());
  const auto n = static_cast<std::size_t>(grid.nlon());

  // A batch mixing variables, rows and layers (odd count exercises the
  // trailing single-line path too).
  const auto& all = bank.lines();
  ASSERT_GE(all.size(), 7u);
  const std::vector<filter::LineKey> batch(all.begin(), all.begin() + 7);

  Rng rng(12);
  std::vector<double> data(batch.size() * n);
  for (double& v : data) v = rng.uniform(-1.0, 1.0);
  std::vector<double> a(n), b(n);
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const filter::LineKey la = batch[0];
  const filter::LineKey lb = batch[1];

  // Warm-up pass (workspace growth + any lazy bank tables).
  filter::filter_line_fft(plan, a, bank.response(la.var, la.j));
  filter::filter_line_pair_fft(plan, a, b, bank.response(la.var, la.j),
                               bank.response(lb.var, lb.j));
  filter::filter_lines_fft(plan, bank, batch, data);

  const std::size_t before = allocs();
  filter::filter_line_fft(plan, a, bank.response(la.var, la.j));
  filter::filter_line_pair_fft(plan, a, b, bank.response(la.var, la.j),
                               bank.response(lb.var, lb.j));
  filter::filter_lines_fft(plan, bank, batch, data);
  const std::size_t after = allocs();
  EXPECT_EQ(after - before, 0u)
      << (after - before)
      << " heap allocations on warmed-up filter paths (per-line budget is 0)";
}

TEST(FftAllocFree, PartitionedFilterAfterWarmup) {
  const grid::LatLonGrid grid(144, 90, 3);
  const filter::FilterBank bank(
      grid, {{"u", filter::FilterKind::kStrong},
             {"t", filter::FilterKind::kWeak}});
  const auto n = static_cast<std::size_t>(grid.nlon());

  const auto& all = bank.lines();
  ASSERT_GE(all.size(), 7u);
  const std::vector<filter::LineKey> batch(all.begin(), all.begin() + 7);

  Rng rng(13);
  std::vector<double> data(batch.size() * n);
  for (double& v : data) v = rng.uniform(-1.0, 1.0);
  std::vector<double> a(n), b(n);
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const filter::LineKey la = batch[0];

  // Warm-up pass: builds the bank's lazy partition spectra (kernel +
  // block transforms), the small-FFT plan and the PartitionWorkspace
  // growth-only buffers. The batched driver warms every row the batch
  // touches, so the timed pass below may allocate exactly nothing.
  const filter::PartitionedKernel& pk = bank.partition(la.var, la.j);
  filter::filter_line_partition(pk, a);
  filter::filter_line_pair_partition(pk, a, b);
  filter::filter_lines_partition(bank, batch, data);

  const std::size_t before = allocs();
  filter::filter_line_partition(pk, a);
  filter::filter_line_pair_partition(pk, a, b);
  filter::filter_lines_partition(bank, batch, data);
  const std::size_t after = allocs();
  EXPECT_EQ(after - before, 0u)
      << (after - before)
      << " heap allocations on the warmed-up partitioned filter path "
         "(per-line budget is 0 — docs/filter.md)";
}

}  // namespace
}  // namespace agcm::fft
