// Tests for the observability layer: JSON model, tracer semantics,
// exporter well-formedness, metrics registry, and the two invariants the
// design promises — (1) a whole-program span's compute/overhead/wait split
// is bitwise equal to simnet's own TimeBreakdown, and (2) enabling tracing
// changes virtual-time results by exactly zero.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "simnet/machine.hpp"
#include "trace/export.hpp"
#include "trace/histogram.hpp"
#include "trace/json.hpp"
#include "trace/metrics.hpp"
#include "trace/stream_sink.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"

namespace agcm::trace {
namespace {

/// RAII guard: enables tracing with fresh buffers, restores "off" after.
struct TraceGuard {
  explicit TraceGuard(int nranks) {
    set_enabled(true);
    Tracer::instance().begin_run(nranks);
    MetricsRegistry::instance().reset();
  }
  ~TraceGuard() { set_enabled(false); }
};

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ---------------------------------------------------------------- JSON ----

TEST(Json, DumpAndParseRoundTrip) {
  JsonValue root = JsonValue::object();
  root.set("name", "agcm");
  root.set("pi", 3.14159);
  root.set("n", 42);
  root.set("flag", true);
  root.set("nothing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push_back(1.5);
  arr.push_back("two");
  root.set("arr", std::move(arr));

  const std::string text = root.dump();
  std::string error;
  const auto parsed = JsonValue::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->find("name")->as_string(), "agcm");
  EXPECT_DOUBLE_EQ(parsed->find("pi")->as_number(), 3.14159);
  EXPECT_DOUBLE_EQ(parsed->find("n")->as_number(), 42.0);
  EXPECT_TRUE(parsed->find("flag")->as_bool());
  EXPECT_TRUE(parsed->find("nothing")->is_null());
  ASSERT_EQ(parsed->find("arr")->size(), 2u);
  // Integral numbers print without a decimal point.
  EXPECT_NE(text.find("\"n\":42"), std::string::npos);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("{\"a\":}").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(JsonValue::parse("[1,2] garbage").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("nul").has_value());
  EXPECT_TRUE(JsonValue::parse("[1,2,3]").has_value());
}

TEST(Json, DumpIsDeterministic) {
  auto build = [] {
    JsonValue v = JsonValue::object();
    v.set("b", 2.0 / 3.0);
    v.set("a", 1e-7);
    return v.dump();
  };
  EXPECT_EQ(build(), build());
  // Insertion order is preserved (not sorted).
  EXPECT_LT(build().find("\"b\""), build().find("\"a\""));
}

TEST(Json, NumberReprRoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e300, -2.5e-13, 4503599627370497.0}) {
    const std::string repr = JsonValue::number_repr(v);
    EXPECT_TRUE(same_bits(std::strtod(repr.c_str(), nullptr), v)) << repr;
  }
}

// -------------------------------------------------------------- tracer ----

TEST(Tracer, SpanNestingDepthsAndOrdering) {
  TraceGuard guard(1);
  simnet::Machine machine(simnet::MachineProfile::ideal());
  machine.run(1, [](simnet::RankContext& ctx) {
    AGCM_TRACE_SPAN("outer", ctx);
    ctx.clock().compute(10.0);
    {
      AGCM_TRACE_SPAN("inner", ctx);
      ctx.clock().compute(5.0);
    }
    ctx.clock().compute(1.0);
  });

  const auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 2u);
  // Rank-major, begin-order: outer first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  // Containment in virtual time.
  EXPECT_LE(spans[0].begin, spans[1].begin);
  EXPECT_GE(spans[0].end, spans[1].end);
  EXPECT_DOUBLE_EQ(spans[0].duration(), 16.0);  // ideal: 1 flop = 1 s
  EXPECT_DOUBLE_EQ(spans[1].duration(), 5.0);

  // Raw events are in non-decreasing virtual time.
  const auto& events = Tracer::instance().events(0);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].t, events[i].t);
}

TEST(Tracer, DisabledRecordingCostsNothingAndStoresNothing) {
  set_enabled(false);
  Tracer::instance().begin_run(1);
  Tracer::instance().begin_span(0, "ghost", 1.0, {});
  Tracer::instance().end_span(0, 2.0, {});
  Tracer::instance().instant(0, "ghost", 1.0);
  Tracer::instance().counter(0, "ghost", 1.0, 42.0);
  EXPECT_EQ(Tracer::instance().total_events(), 0u);
}

TEST(Tracer, UnterminatedSpansAreDropped) {
  TraceGuard guard(1);
  Tracer::instance().begin_span(0, "open", 0.0, {});
  Tracer::instance().begin_span(0, "closed", 1.0, {});
  Tracer::instance().end_span(0, 2.0, {});
  const auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "closed");
}

TEST(Tracer, WholeProgramSpanSplitEqualsMachineBreakdown) {
  TraceGuard guard(2);
  simnet::Machine machine(simnet::MachineProfile::cray_t3d());
  const auto result = machine.run(2, [](simnet::RankContext& ctx) {
    AGCM_TRACE_SPAN("prog", ctx);
    ctx.clock().compute(1.0e6, 0.7);
    ctx.clock().memory_traffic(1.0e4);
  });

  const auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 2u);
  for (const SpanRecord& s : spans) {
    const simnet::TimeBreakdown& b =
        result.breakdowns[static_cast<std::size_t>(s.rank)];
    EXPECT_TRUE(same_bits(s.split.compute, b.compute));
    EXPECT_TRUE(same_bits(s.split.overhead, b.overhead));
    EXPECT_TRUE(same_bits(s.split.wait, b.wait));
    EXPECT_TRUE(same_bits(s.end, b.total()));
  }
}

// ----------------------------------------------------------- exporters ----

TEST(Export, ChromeTraceIsWellFormedAndVirtualTimeScaled) {
  TraceGuard guard(2);
  Tracer::instance().begin_span(0, "phase", 0.25, {0.25, 0.0, 0.0});
  Tracer::instance().end_span(0, 1.25, {1.0, 0.25, 0.0});
  Tracer::instance().counter(1, "imbalance", 0.5, 0.37);
  Tracer::instance().instant(1, "marker", 0.75);

  const std::string text = chrome_trace_json(Tracer::instance());
  std::string error;
  const auto doc = JsonValue::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;

  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int complete = 0, counters = 0, instants = 0, metadata = 0;
  for (const JsonValue& e : events->items()) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "X") {
      ++complete;
      // Virtual seconds -> trace microseconds.
      EXPECT_DOUBLE_EQ(e.find("ts")->as_number(), 0.25e6);
      EXPECT_DOUBLE_EQ(e.find("dur")->as_number(), 1.0e6);
      ASSERT_NE(e.find("args"), nullptr);
      EXPECT_DOUBLE_EQ(e.find("args")->find("compute_sec")->as_number(), 0.75);
    } else if (ph == "C") {
      ++counters;
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(complete, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_GE(metadata, 3);  // process name + one thread name per rank
}

TEST(Export, AggregatePhasesCountsIdleRanksAsImbalance) {
  TraceGuard guard(4);
  // Only rank 0 does this phase: with 4 ranks, (max-avg)/avg = 3.
  Tracer::instance().begin_span(0, "lonely", 0.0, {});
  Tracer::instance().end_span(0, 2.0, {2.0, 0.0, 0.0});

  const auto phases = aggregate_phases(Tracer::instance());
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].name, "lonely");
  EXPECT_EQ(phases[0].calls, 1u);
  EXPECT_EQ(phases[0].ranks_touched, 1);
  EXPECT_DOUBLE_EQ(phases[0].total_sec, 2.0);
  EXPECT_DOUBLE_EQ(phases[0].max_rank_sec, 2.0);
  EXPECT_DOUBLE_EQ(phases[0].mean_rank_sec, 0.5);
  EXPECT_DOUBLE_EQ(phases[0].imbalance, 3.0);
}

TEST(Export, CsvHasOneLinePerSpan) {
  TraceGuard guard(1);
  Tracer::instance().begin_span(0, "a", 0.0, {});
  Tracer::instance().end_span(0, 1.0, {1.0, 0.0, 0.0});
  Tracer::instance().begin_span(0, "b", 1.0, {1.0, 0.0, 0.0});
  Tracer::instance().end_span(0, 3.0, {2.0, 1.0, 0.0});

  const std::string csv = trace_csv(Tracer::instance());
  int lines = 0;
  for (char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3);  // header + 2 spans
  EXPECT_EQ(csv.rfind("rank,name,depth,begin_s,end_s,duration_s,", 0), 0u);
}

// ------------------------------------------------------------- metrics ----

TEST(Metrics, PerRankCountersMergeAcrossRanks) {
  TraceGuard guard(3);
  auto& reg = MetricsRegistry::instance();
  reg.add("comm.messages", 0, 2.0);
  reg.add("comm.messages", 1, 3.0);
  reg.add("comm.messages", 1, 1.0);
  reg.add("comm.messages", 2, 4.0);

  EXPECT_DOUBLE_EQ(reg.total("comm.messages"), 10.0);
  const auto per_rank = reg.per_rank("comm.messages");
  ASSERT_EQ(per_rank.size(), 3u);
  EXPECT_EQ(per_rank[1].first, 1);
  EXPECT_DOUBLE_EQ(per_rank[1].second, 4.0);

  reg.set_gauge("lb.imbalance", 0, 0.35);
  reg.set_gauge("lb.imbalance", 0, 0.06);  // gauges overwrite
  EXPECT_DOUBLE_EQ(reg.per_rank("lb.imbalance")[0].second, 0.06);

  reg.observe("lat", 1.0);
  reg.observe("lat", 3.0);
  EXPECT_EQ(reg.distribution("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.distribution("lat").mean(), 2.0);

  // to_json reflects all three families and parses back.
  std::string error;
  const auto doc = JsonValue::parse(reg.to_json().dump(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_DOUBLE_EQ(
      doc->find("counters")->find("comm.messages")->find("total")->as_number(),
      10.0);
}

TEST(Metrics, ConcurrentAddsSumExactly) {
  TraceGuard guard(8);
  auto& reg = MetricsRegistry::instance();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kAdds; ++i) reg.add("hot", t, 1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(reg.total("hot"), double(kThreads) * kAdds);
  for (const auto& [rank, value] : reg.per_rank("hot"))
    EXPECT_DOUBLE_EQ(value, double(kAdds));
}

TEST(Metrics, NoOpWhenDisabled) {
  MetricsRegistry::instance().reset();
  set_enabled(false);
  MetricsRegistry::instance().add("ghost", 0, 1.0);
  MetricsRegistry::instance().set_gauge("ghost", 0, 1.0);
  MetricsRegistry::instance().observe("ghost", 1.0);
  EXPECT_TRUE(MetricsRegistry::instance().names().empty());
}

TEST(Export, ChromeTraceEscapesHostileNamesExactly) {
  TraceGuard guard(1);
  // Names with quotes, backslashes, control characters and non-ASCII bytes
  // must survive a JSON round-trip byte-for-byte (regression test for the
  // exporter's string escaping).
  const std::string hostile = "phase \"x\\y\"\n\ttab\x01 end";
  Tracer::instance().begin_span(0, hostile, 0.0, {});
  Tracer::instance().end_span(0, 1.0, {1.0, 0.0, 0.0});
  Tracer::instance().instant(0, "marker \"quoted\"", 0.5);

  const std::string text = chrome_trace_json(Tracer::instance());
  std::string error;
  const auto doc = JsonValue::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  bool found_span = false, found_instant = false;
  for (const JsonValue& e : doc->find("traceEvents")->items()) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "X") {
      EXPECT_EQ(e.find("name")->as_string(), hostile);
      found_span = true;
    } else if (ph == "i") {
      EXPECT_EQ(e.find("name")->as_string(), "marker \"quoted\"");
      found_instant = true;
    }
  }
  EXPECT_TRUE(found_span);
  EXPECT_TRUE(found_instant);
}

TEST(Export, CsvDoublesEmbeddedQuotes) {
  TraceGuard guard(1);
  Tracer::instance().begin_span(0, "say[\"x\"]", 0.0, {});
  Tracer::instance().end_span(0, 1.0, {1.0, 0.0, 0.0});
  const std::string csv = trace_csv(Tracer::instance());
  // RFC 4180: embedded quotes are doubled inside a quoted field.
  EXPECT_NE(csv.find("\"say[\"\"x\"\"]\""), std::string::npos) << csv;
}

// ----------------------------------------------------------- histogram ----

/// The exact rule LogHistogram::percentile targets, applied to a sorted
/// copy of the samples.
double nearest_rank_oracle(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto rank = LogHistogram::target_rank(sorted.size(), q);
  return sorted[static_cast<std::size_t>(rank)];
}

TEST(Histogram, PercentilesTrackSortedOracleWithinBinError) {
  // Worst-case relative error: the estimate and the true order statistic
  // share a bin whose bounds are a factor 2^(1/kSubBins) apart.
  const double tol = std::exp2(1.0 / LogHistogram::kSubBins) - 1.0;
  Rng rng(1996);
  LogHistogram hist;
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    // Heavy dynamic range: ~6 orders of magnitude.
    const double v = std::exp(rng.uniform(-7.0, 7.0));
    samples.push_back(v);
    hist.add(v);
  }
  for (double q : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const double est = hist.percentile(q);
    const double exact = nearest_rank_oracle(samples, q);
    EXPECT_NEAR(est / exact, 1.0, tol) << "q=" << q;
  }
  // Bounded memory: ~kSubBins bins per octave of observed range.
  const double octaves = std::log2(hist.max() / hist.min());
  EXPECT_LE(hist.bin_count(),
            static_cast<std::size_t>(octaves + 2) * LogHistogram::kSubBins);
}

TEST(Histogram, OrderIndependenceIsExact) {
  std::vector<double> values;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) values.push_back(rng.uniform(0.001, 1000.0));
  LogHistogram forward, backward;
  for (const double v : values) forward.add(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it)
    backward.add(*it);
  for (double q : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    EXPECT_TRUE(same_bits(forward.percentile(q), backward.percentile(q)));
  }
}

TEST(Histogram, NonPositiveBucketSortsFirstAndMergeWorks) {
  LogHistogram hist;
  for (int i = 0; i < 10; ++i) hist.add(0.0);
  for (int i = 0; i < 10; ++i) hist.add(100.0);
  // Rank 0..9 are the zeros: p25 targets rank round(19*0.25)=5 -> 0.
  EXPECT_DOUBLE_EQ(hist.percentile(25.0), 0.0);
  EXPECT_GT(hist.percentile(75.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 100.0);

  LogHistogram other;
  other.add(-5.0);
  other.merge(hist);
  EXPECT_EQ(other.count(), 21u);
  EXPECT_DOUBLE_EQ(other.min(), -5.0);
  EXPECT_DOUBLE_EQ(other.percentile(0.0), -2.5);  // nonpos-bucket midpoint
  // Empty edge case.
  LogHistogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
  EXPECT_EQ(empty.bin_count(), 0u);
}

// ------------------------------------------------------ streaming sink ----

TEST(StreamSink, DrainEmptiesTracerAndEmitsEquivalentSpans) {
  TraceGuard guard(2);
  const std::string path = "test_stream_sink_trace.json";
  StreamingTraceSink sink(path, /*chunk_bytes=*/64);  // force many flushes
  sink.begin(2);

  // Two "runs" drained separately, with an unterminated span that must be
  // dropped (same rule as Tracer::spans()) and a hostile name that must be
  // escaped.
  Tracer::instance().begin_span(0, "alpha \"q\"", 0.0, {});
  Tracer::instance().end_span(0, 1.0, {1.0, 0.0, 0.0});
  Tracer::instance().counter(1, "bytes", 0.5, 42.0);
  Tracer::instance().begin_span(1, "open-forever", 0.25, {});
  sink.drain(Tracer::instance());
  EXPECT_EQ(Tracer::instance().total_events(), 0u);

  Tracer::instance().begin_run(2);
  Tracer::instance().begin_span(1, "beta", 2.0, {1.0, 0.5, 0.0});
  Tracer::instance().end_span(1, 3.0, {1.5, 1.0, 0.0});
  Tracer::instance().instant(0, "tick", 2.5);
  sink.drain(Tracer::instance());
  sink.close();

  EXPECT_EQ(sink.spans_written(), 2u);
  EXPECT_GT(sink.bytes_written(), 0u);

  const std::string text = read_text_file(path);
  std::string error;
  const auto doc = JsonValue::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  int spans = 0, counters = 0, instants = 0, metadata = 0;
  bool saw_alpha = false, saw_beta = false;
  for (const JsonValue& e : doc->find("traceEvents")->items()) {
    const std::string& ph = e.find("ph")->as_string();
    const std::string& name = e.find("name")->as_string();
    EXPECT_NE(name, "open-forever");  // unterminated: dropped
    if (ph == "X") {
      ++spans;
      if (name == "alpha \"q\"") {
        saw_alpha = true;
        EXPECT_DOUBLE_EQ(e.find("dur")->as_number(), 1.0e6);
      }
      if (name == "beta") {
        saw_beta = true;
        EXPECT_DOUBLE_EQ(e.find("args")->find("overhead_sec")->as_number(),
                         0.5);
      }
    } else if (ph == "C") {
      ++counters;
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(spans, 2);
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_GE(metadata, 3);
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_beta);
  std::remove(path.c_str());
}

TEST(StreamSink, CloseWithoutDrainYieldsValidEmptyTrace) {
  const std::string path = "test_stream_sink_empty.json";
  {
    StreamingTraceSink sink(path);
    // Destructor must close and leave a syntactically complete document.
  }
  std::string error;
  const auto doc = JsonValue::parse(read_text_file(path), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE(doc->find("traceEvents")->is_array());
  std::remove(path.c_str());
}

TEST(Tracer, TakeEventsMovesOutAndDropsOpenSpans) {
  TraceGuard guard(1);
  Tracer::instance().begin_span(0, "done", 0.0, {});
  Tracer::instance().end_span(0, 1.0, {1.0, 0.0, 0.0});
  Tracer::instance().begin_span(0, "still-open", 2.0, {});
  auto events = Tracer::instance().take_events(0);
  EXPECT_EQ(events.size(), 3u);
  EXPECT_EQ(Tracer::instance().total_events(), 0u);
  EXPECT_TRUE(Tracer::instance().take_events(0).empty());
  EXPECT_TRUE(Tracer::instance().take_events(-1).empty());
  // The open stack was cleared too: a fresh end_span has nothing to match
  // and is dropped rather than pairing with the stale begin.
  Tracer::instance().end_span(0, 3.0, {});
  EXPECT_TRUE(Tracer::instance().spans().empty());
}

// ----------------------------------------- metrics edge cases ------------

TEST(Metrics, EmptyRegistrySerialisesToEmptyObjects) {
  TraceGuard guard(1);
  const std::string text = MetricsRegistry::instance().to_json().dump();
  std::string error;
  const auto doc = JsonValue::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("counters")->size(), 0u);
  EXPECT_EQ(doc->find("gauges")->size(), 0u);
  EXPECT_EQ(doc->find("distributions")->size(), 0u);
  EXPECT_DOUBLE_EQ(MetricsRegistry::instance().percentile("absent", 50.0),
                   0.0);
  EXPECT_EQ(MetricsRegistry::instance().histogram("absent").count(), 0u);
}

TEST(Metrics, ResetBetweenPhasesIsolatesRecordings) {
  TraceGuard guard(2);
  auto& reg = MetricsRegistry::instance();
  reg.add("phase.a", 0, 5.0);
  reg.observe("lat", 1.0);
  EXPECT_DOUBLE_EQ(reg.total("phase.a"), 5.0);
  reg.reset();
  EXPECT_DOUBLE_EQ(reg.total("phase.a"), 0.0);
  EXPECT_EQ(reg.distribution("lat").count(), 0u);
  reg.add("phase.b", 1, 2.0);
  EXPECT_EQ(reg.names(), std::vector<std::string>{"phase.b"});
}

TEST(Metrics, DistributionPercentilesMatchOracleAndAppearInJson) {
  TraceGuard guard(1);
  auto& reg = MetricsRegistry::instance();
  std::vector<double> samples;
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(0.5, 50.0);
    samples.push_back(v);
    reg.observe("cost", v);
  }
  const double tol = std::exp2(1.0 / LogHistogram::kSubBins) - 1.0;
  for (double q : {50.0, 95.0, 99.0}) {
    EXPECT_NEAR(reg.percentile("cost", q) / nearest_rank_oracle(samples, q),
                1.0, tol)
        << "q=" << q;
  }
  const auto doc = JsonValue::parse(reg.to_json().dump());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* dist = doc->find("distributions")->find("cost");
  ASSERT_NE(dist, nullptr);
  for (const char* key : {"count", "mean", "stddev", "min", "max", "p50",
                          "p95", "p99"}) {
    EXPECT_NE(dist->find(key), nullptr) << key;
  }
  EXPECT_DOUBLE_EQ(dist->find("p50")->as_number(),
                   reg.percentile("cost", 50.0));
}

TEST(Metrics, ConcurrentObserveIsLosslessAndOrderIndependent) {
  TraceGuard guard(8);
  auto& reg = MetricsRegistry::instance();
  constexpr int kThreads = 8;
  constexpr int kObs = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kObs; ++i)
        reg.observe("conc", rng.uniform(0.01, 10.0));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.distribution("conc").count(),
            static_cast<std::uint64_t>(kThreads) * kObs);
  // The histogram is pure counts, so the percentile is a deterministic
  // function of the sample *multiset*: recompute serially and compare bits.
  LogHistogram serial;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(static_cast<std::uint64_t>(t) + 1);
    for (int i = 0; i < kObs; ++i) serial.add(rng.uniform(0.01, 10.0));
  }
  for (double q : {50.0, 95.0, 99.0}) {
    EXPECT_TRUE(same_bits(reg.percentile("conc", q), serial.percentile(q)));
  }
}

// --------------------------------------------- end-to-end model runs ------

core::ModelConfig tiny_model() {
  core::ModelConfig cfg;
  cfg.nlon = 24;
  cfg.nlat = 16;
  cfg.nlev = 3;
  cfg.mesh_rows = 2;
  cfg.mesh_cols = 2;
  cfg.physics_load_balance = true;  // exercise the lb counters too
  return cfg;
}

TEST(TraceModel, TracingChangesVirtualResultsByExactlyZero) {
  set_enabled(false);
  const auto plain = core::run_model(tiny_model(), 2, 1);

  {
    TraceGuard guard(4);
    const auto traced = core::run_model(tiny_model(), 2, 1);
    ASSERT_EQ(plain.rank_breakdowns.size(), traced.rank_breakdowns.size());
    for (std::size_t r = 0; r < plain.rank_breakdowns.size(); ++r) {
      EXPECT_TRUE(same_bits(plain.rank_breakdowns[r].compute,
                            traced.rank_breakdowns[r].compute));
      EXPECT_TRUE(same_bits(plain.rank_breakdowns[r].overhead,
                            traced.rank_breakdowns[r].overhead));
      EXPECT_TRUE(same_bits(plain.rank_breakdowns[r].wait,
                            traced.rank_breakdowns[r].wait));
    }
    EXPECT_TRUE(same_bits(plain.per_step.total(), traced.per_step.total()));
  }
}

TEST(TraceModel, ModelRankSpansMatchReportBreakdownsBitwise) {
  TraceGuard guard(4);
  const auto report = core::run_model(tiny_model(), 2, 1);
  const auto spans = Tracer::instance().spans();

  int found = 0;
  for (const SpanRecord& s : spans) {
    if (s.name != "model.rank") continue;
    ++found;
    const auto& b = report.rank_breakdowns[static_cast<std::size_t>(s.rank)];
    EXPECT_TRUE(same_bits(s.split.compute, b.compute));
    EXPECT_TRUE(same_bits(s.split.overhead, b.overhead));
    EXPECT_TRUE(same_bits(s.split.wait, b.wait));
  }
  EXPECT_EQ(found, 4);

  // The instrumented phases all appear, and comm counters were recorded.
  const auto phases = aggregate_phases(Tracer::instance());
  auto has = [&](const char* name) {
    for (const auto& p : phases)
      if (p.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has("model.rank"));
  EXPECT_TRUE(has("model.step"));
  EXPECT_TRUE(has("dynamics.filter"));
  EXPECT_TRUE(has("dynamics.fd"));
  EXPECT_TRUE(has("physics.columns"));
  EXPECT_TRUE(has("physics.balance"));
  EXPECT_TRUE(has("comm.barrier"));
  EXPECT_GT(MetricsRegistry::instance().total("comm.messages_sent"), 0.0);
  EXPECT_GT(MetricsRegistry::instance().total("comm.bytes_sent"), 0.0);
  // The balancer ran and published its per-iteration imbalance gauge (the
  // tiny uniform model may legitimately move zero items).
  EXPECT_FALSE(MetricsRegistry::instance().per_rank("lb.imbalance").empty());

  // The whole trace exports to well-formed Chrome JSON.
  std::string error;
  EXPECT_TRUE(
      JsonValue::parse(chrome_trace_json(Tracer::instance()), &error)
          .has_value())
      << error;
}

}  // namespace
}  // namespace agcm::trace
