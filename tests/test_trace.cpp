// Tests for the observability layer: JSON model, tracer semantics,
// exporter well-formedness, metrics registry, and the two invariants the
// design promises — (1) a whole-program span's compute/overhead/wait split
// is bitwise equal to simnet's own TimeBreakdown, and (2) enabling tracing
// changes virtual-time results by exactly zero.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "simnet/machine.hpp"
#include "trace/export.hpp"
#include "trace/json.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace agcm::trace {
namespace {

/// RAII guard: enables tracing with fresh buffers, restores "off" after.
struct TraceGuard {
  explicit TraceGuard(int nranks) {
    set_enabled(true);
    Tracer::instance().begin_run(nranks);
    MetricsRegistry::instance().reset();
  }
  ~TraceGuard() { set_enabled(false); }
};

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ---------------------------------------------------------------- JSON ----

TEST(Json, DumpAndParseRoundTrip) {
  JsonValue root = JsonValue::object();
  root.set("name", "agcm");
  root.set("pi", 3.14159);
  root.set("n", 42);
  root.set("flag", true);
  root.set("nothing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push_back(1.5);
  arr.push_back("two");
  root.set("arr", std::move(arr));

  const std::string text = root.dump();
  std::string error;
  const auto parsed = JsonValue::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->find("name")->as_string(), "agcm");
  EXPECT_DOUBLE_EQ(parsed->find("pi")->as_number(), 3.14159);
  EXPECT_DOUBLE_EQ(parsed->find("n")->as_number(), 42.0);
  EXPECT_TRUE(parsed->find("flag")->as_bool());
  EXPECT_TRUE(parsed->find("nothing")->is_null());
  ASSERT_EQ(parsed->find("arr")->size(), 2u);
  // Integral numbers print without a decimal point.
  EXPECT_NE(text.find("\"n\":42"), std::string::npos);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("{\"a\":}").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(JsonValue::parse("[1,2] garbage").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("nul").has_value());
  EXPECT_TRUE(JsonValue::parse("[1,2,3]").has_value());
}

TEST(Json, DumpIsDeterministic) {
  auto build = [] {
    JsonValue v = JsonValue::object();
    v.set("b", 2.0 / 3.0);
    v.set("a", 1e-7);
    return v.dump();
  };
  EXPECT_EQ(build(), build());
  // Insertion order is preserved (not sorted).
  EXPECT_LT(build().find("\"b\""), build().find("\"a\""));
}

TEST(Json, NumberReprRoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e300, -2.5e-13, 4503599627370497.0}) {
    const std::string repr = JsonValue::number_repr(v);
    EXPECT_TRUE(same_bits(std::strtod(repr.c_str(), nullptr), v)) << repr;
  }
}

// -------------------------------------------------------------- tracer ----

TEST(Tracer, SpanNestingDepthsAndOrdering) {
  TraceGuard guard(1);
  simnet::Machine machine(simnet::MachineProfile::ideal());
  machine.run(1, [](simnet::RankContext& ctx) {
    AGCM_TRACE_SPAN("outer", ctx);
    ctx.clock().compute(10.0);
    {
      AGCM_TRACE_SPAN("inner", ctx);
      ctx.clock().compute(5.0);
    }
    ctx.clock().compute(1.0);
  });

  const auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 2u);
  // Rank-major, begin-order: outer first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  // Containment in virtual time.
  EXPECT_LE(spans[0].begin, spans[1].begin);
  EXPECT_GE(spans[0].end, spans[1].end);
  EXPECT_DOUBLE_EQ(spans[0].duration(), 16.0);  // ideal: 1 flop = 1 s
  EXPECT_DOUBLE_EQ(spans[1].duration(), 5.0);

  // Raw events are in non-decreasing virtual time.
  const auto& events = Tracer::instance().events(0);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].t, events[i].t);
}

TEST(Tracer, DisabledRecordingCostsNothingAndStoresNothing) {
  set_enabled(false);
  Tracer::instance().begin_run(1);
  Tracer::instance().begin_span(0, "ghost", 1.0, {});
  Tracer::instance().end_span(0, 2.0, {});
  Tracer::instance().instant(0, "ghost", 1.0);
  Tracer::instance().counter(0, "ghost", 1.0, 42.0);
  EXPECT_EQ(Tracer::instance().total_events(), 0u);
}

TEST(Tracer, UnterminatedSpansAreDropped) {
  TraceGuard guard(1);
  Tracer::instance().begin_span(0, "open", 0.0, {});
  Tracer::instance().begin_span(0, "closed", 1.0, {});
  Tracer::instance().end_span(0, 2.0, {});
  const auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "closed");
}

TEST(Tracer, WholeProgramSpanSplitEqualsMachineBreakdown) {
  TraceGuard guard(2);
  simnet::Machine machine(simnet::MachineProfile::cray_t3d());
  const auto result = machine.run(2, [](simnet::RankContext& ctx) {
    AGCM_TRACE_SPAN("prog", ctx);
    ctx.clock().compute(1.0e6, 0.7);
    ctx.clock().memory_traffic(1.0e4);
  });

  const auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 2u);
  for (const SpanRecord& s : spans) {
    const simnet::TimeBreakdown& b =
        result.breakdowns[static_cast<std::size_t>(s.rank)];
    EXPECT_TRUE(same_bits(s.split.compute, b.compute));
    EXPECT_TRUE(same_bits(s.split.overhead, b.overhead));
    EXPECT_TRUE(same_bits(s.split.wait, b.wait));
    EXPECT_TRUE(same_bits(s.end, b.total()));
  }
}

// ----------------------------------------------------------- exporters ----

TEST(Export, ChromeTraceIsWellFormedAndVirtualTimeScaled) {
  TraceGuard guard(2);
  Tracer::instance().begin_span(0, "phase", 0.25, {0.25, 0.0, 0.0});
  Tracer::instance().end_span(0, 1.25, {1.0, 0.25, 0.0});
  Tracer::instance().counter(1, "imbalance", 0.5, 0.37);
  Tracer::instance().instant(1, "marker", 0.75);

  const std::string text = chrome_trace_json(Tracer::instance());
  std::string error;
  const auto doc = JsonValue::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;

  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int complete = 0, counters = 0, instants = 0, metadata = 0;
  for (const JsonValue& e : events->items()) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "X") {
      ++complete;
      // Virtual seconds -> trace microseconds.
      EXPECT_DOUBLE_EQ(e.find("ts")->as_number(), 0.25e6);
      EXPECT_DOUBLE_EQ(e.find("dur")->as_number(), 1.0e6);
      ASSERT_NE(e.find("args"), nullptr);
      EXPECT_DOUBLE_EQ(e.find("args")->find("compute_sec")->as_number(), 0.75);
    } else if (ph == "C") {
      ++counters;
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(complete, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_GE(metadata, 3);  // process name + one thread name per rank
}

TEST(Export, AggregatePhasesCountsIdleRanksAsImbalance) {
  TraceGuard guard(4);
  // Only rank 0 does this phase: with 4 ranks, (max-avg)/avg = 3.
  Tracer::instance().begin_span(0, "lonely", 0.0, {});
  Tracer::instance().end_span(0, 2.0, {2.0, 0.0, 0.0});

  const auto phases = aggregate_phases(Tracer::instance());
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].name, "lonely");
  EXPECT_EQ(phases[0].calls, 1u);
  EXPECT_EQ(phases[0].ranks_touched, 1);
  EXPECT_DOUBLE_EQ(phases[0].total_sec, 2.0);
  EXPECT_DOUBLE_EQ(phases[0].max_rank_sec, 2.0);
  EXPECT_DOUBLE_EQ(phases[0].mean_rank_sec, 0.5);
  EXPECT_DOUBLE_EQ(phases[0].imbalance, 3.0);
}

TEST(Export, CsvHasOneLinePerSpan) {
  TraceGuard guard(1);
  Tracer::instance().begin_span(0, "a", 0.0, {});
  Tracer::instance().end_span(0, 1.0, {1.0, 0.0, 0.0});
  Tracer::instance().begin_span(0, "b", 1.0, {1.0, 0.0, 0.0});
  Tracer::instance().end_span(0, 3.0, {2.0, 1.0, 0.0});

  const std::string csv = trace_csv(Tracer::instance());
  int lines = 0;
  for (char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3);  // header + 2 spans
  EXPECT_EQ(csv.rfind("rank,name,depth,begin_s,end_s,duration_s,", 0), 0u);
}

// ------------------------------------------------------------- metrics ----

TEST(Metrics, PerRankCountersMergeAcrossRanks) {
  TraceGuard guard(3);
  auto& reg = MetricsRegistry::instance();
  reg.add("comm.messages", 0, 2.0);
  reg.add("comm.messages", 1, 3.0);
  reg.add("comm.messages", 1, 1.0);
  reg.add("comm.messages", 2, 4.0);

  EXPECT_DOUBLE_EQ(reg.total("comm.messages"), 10.0);
  const auto per_rank = reg.per_rank("comm.messages");
  ASSERT_EQ(per_rank.size(), 3u);
  EXPECT_EQ(per_rank[1].first, 1);
  EXPECT_DOUBLE_EQ(per_rank[1].second, 4.0);

  reg.set_gauge("lb.imbalance", 0, 0.35);
  reg.set_gauge("lb.imbalance", 0, 0.06);  // gauges overwrite
  EXPECT_DOUBLE_EQ(reg.per_rank("lb.imbalance")[0].second, 0.06);

  reg.observe("lat", 1.0);
  reg.observe("lat", 3.0);
  EXPECT_EQ(reg.distribution("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.distribution("lat").mean(), 2.0);

  // to_json reflects all three families and parses back.
  std::string error;
  const auto doc = JsonValue::parse(reg.to_json().dump(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_DOUBLE_EQ(
      doc->find("counters")->find("comm.messages")->find("total")->as_number(),
      10.0);
}

TEST(Metrics, ConcurrentAddsSumExactly) {
  TraceGuard guard(8);
  auto& reg = MetricsRegistry::instance();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kAdds; ++i) reg.add("hot", t, 1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(reg.total("hot"), double(kThreads) * kAdds);
  for (const auto& [rank, value] : reg.per_rank("hot"))
    EXPECT_DOUBLE_EQ(value, double(kAdds));
}

TEST(Metrics, NoOpWhenDisabled) {
  MetricsRegistry::instance().reset();
  set_enabled(false);
  MetricsRegistry::instance().add("ghost", 0, 1.0);
  MetricsRegistry::instance().set_gauge("ghost", 0, 1.0);
  MetricsRegistry::instance().observe("ghost", 1.0);
  EXPECT_TRUE(MetricsRegistry::instance().names().empty());
}

// --------------------------------------------- end-to-end model runs ------

core::ModelConfig tiny_model() {
  core::ModelConfig cfg;
  cfg.nlon = 24;
  cfg.nlat = 16;
  cfg.nlev = 3;
  cfg.mesh_rows = 2;
  cfg.mesh_cols = 2;
  cfg.physics_load_balance = true;  // exercise the lb counters too
  return cfg;
}

TEST(TraceModel, TracingChangesVirtualResultsByExactlyZero) {
  set_enabled(false);
  const auto plain = core::run_model(tiny_model(), 2, 1);

  {
    TraceGuard guard(4);
    const auto traced = core::run_model(tiny_model(), 2, 1);
    ASSERT_EQ(plain.rank_breakdowns.size(), traced.rank_breakdowns.size());
    for (std::size_t r = 0; r < plain.rank_breakdowns.size(); ++r) {
      EXPECT_TRUE(same_bits(plain.rank_breakdowns[r].compute,
                            traced.rank_breakdowns[r].compute));
      EXPECT_TRUE(same_bits(plain.rank_breakdowns[r].overhead,
                            traced.rank_breakdowns[r].overhead));
      EXPECT_TRUE(same_bits(plain.rank_breakdowns[r].wait,
                            traced.rank_breakdowns[r].wait));
    }
    EXPECT_TRUE(same_bits(plain.per_step.total(), traced.per_step.total()));
  }
}

TEST(TraceModel, ModelRankSpansMatchReportBreakdownsBitwise) {
  TraceGuard guard(4);
  const auto report = core::run_model(tiny_model(), 2, 1);
  const auto spans = Tracer::instance().spans();

  int found = 0;
  for (const SpanRecord& s : spans) {
    if (s.name != "model.rank") continue;
    ++found;
    const auto& b = report.rank_breakdowns[static_cast<std::size_t>(s.rank)];
    EXPECT_TRUE(same_bits(s.split.compute, b.compute));
    EXPECT_TRUE(same_bits(s.split.overhead, b.overhead));
    EXPECT_TRUE(same_bits(s.split.wait, b.wait));
  }
  EXPECT_EQ(found, 4);

  // The instrumented phases all appear, and comm counters were recorded.
  const auto phases = aggregate_phases(Tracer::instance());
  auto has = [&](const char* name) {
    for (const auto& p : phases)
      if (p.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has("model.rank"));
  EXPECT_TRUE(has("model.step"));
  EXPECT_TRUE(has("dynamics.filter"));
  EXPECT_TRUE(has("dynamics.fd"));
  EXPECT_TRUE(has("physics.columns"));
  EXPECT_TRUE(has("physics.balance"));
  EXPECT_TRUE(has("comm.barrier"));
  EXPECT_GT(MetricsRegistry::instance().total("comm.messages_sent"), 0.0);
  EXPECT_GT(MetricsRegistry::instance().total("comm.bytes_sent"), 0.0);
  // The balancer ran and published its per-iteration imbalance gauge (the
  // tiny uniform model may legitimately move zero items).
  EXPECT_FALSE(MetricsRegistry::instance().per_rank("lb.imbalance").empty());

  // The whole trace exports to well-formed Chrome JSON.
  std::string error;
  EXPECT_TRUE(
      JsonValue::parse(chrome_trace_json(Tracer::instance()), &error)
          .has_value())
      << error;
}

}  // namespace
}  // namespace agcm::trace
