// Tests for the polar filter: response properties, the convolution <-> FFT
// equivalence (the paper's equations (1)-(2)), the movement plans, and all
// four parallel variants against the serial reference across node meshes.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "filter/bank.hpp"
#include "filter/implicit_zonal.hpp"
#include "filter/parallel.hpp"
#include "filter/serial.hpp"
#include "filter/variants.hpp"
#include "simnet/machine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace agcm::filter {
namespace {

using comm::Communicator;
using comm::Mesh2D;
using grid::Array3D;
using grid::Decomp2D;
using grid::LatLonGrid;
using simnet::Machine;
using simnet::MachineProfile;
using simnet::RankContext;

constexpr double kPi = std::numbers::pi;

TEST(Response, BoundsAndZonalMeanPreserved) {
  const int n = 144;
  for (FilterKind kind : {FilterKind::kStrong, FilterKind::kWeak}) {
    for (double lat_deg : {-89.0, -70.0, -50.0, 50.0, 70.0, 89.0}) {
      const auto line = response_line(kind, n, lat_deg * kPi / 180.0);
      EXPECT_DOUBLE_EQ(line[0], 1.0);  // wavenumber 0 untouched
      for (double s : line) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
      }
    }
  }
}

TEST(Response, IdentityEquatorwardOfCutoff) {
  const int n = 144;
  const auto strong = response_line(FilterKind::kStrong, n, 30.0 * kPi / 180.0);
  const auto weak = response_line(FilterKind::kWeak, n, 55.0 * kPi / 180.0);
  for (double s : strong) EXPECT_DOUBLE_EQ(s, 1.0);
  for (double s : weak) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(Response, StrongerTowardPolesAndHigherWavenumbers) {
  const int n = 144;
  const auto mid = response_line(FilterKind::kStrong, n, 55.0 * kPi / 180.0);
  const auto polar = response_line(FilterKind::kStrong, n, 85.0 * kPi / 180.0);
  // More damping near the pole.
  for (int s = 1; s <= n / 2; ++s)
    EXPECT_LE(polar[static_cast<std::size_t>(s)],
              mid[static_cast<std::size_t>(s)] + 1e-14);
  // Monotone non-increasing up to the Nyquist wavenumber.
  for (int s = 1; s < n / 2; ++s)
    EXPECT_LE(polar[static_cast<std::size_t>(s + 1)],
              polar[static_cast<std::size_t>(s)] + 1e-14);
}

TEST(Response, WeakIsWeakerThanStrong) {
  const int n = 144;
  const double lat = 75.0 * kPi / 180.0;
  const auto strong = response_line(FilterKind::kStrong, n, lat);
  const auto weak = response_line(FilterKind::kWeak, n, lat);
  for (int s = 1; s <= n / 2; ++s)
    EXPECT_GE(weak[static_cast<std::size_t>(s)],
              strong[static_cast<std::size_t>(s)] - 1e-14);
}

TEST(Response, ConjugateSymmetry) {
  const int n = 144;
  const auto line = response_line(FilterKind::kStrong, n, 80.0 * kPi / 180.0);
  for (int s = 1; s < n; ++s)
    EXPECT_DOUBLE_EQ(line[static_cast<std::size_t>(s)],
                     line[static_cast<std::size_t>(n - s)]);
}

TEST(Serial, ConvolutionEqualsFftFiltering) {
  // The paper's equivalence of equations (1) and (2).
  const int n = 144;
  const double lat = 82.0 * kPi / 180.0;
  const auto s_line = response_line(FilterKind::kStrong, n, lat);
  const auto kernel = kernel_from_response(s_line);
  const fft::FftPlan plan(n);

  Rng rng(31);
  std::vector<double> a(static_cast<std::size_t>(n));
  for (double& v : a) v = rng.uniform(-5.0, 5.0);
  std::vector<double> b = a;

  filter_line_fft(plan, a, s_line);
  filter_line_convolution(b, kernel);
  EXPECT_LT(max_abs_diff(a, b), 1e-10);
}

TEST(Serial, FilterDampsHighWavenumberPreservesMean) {
  const int n = 144;
  const double lat = 85.0 * kPi / 180.0;
  const auto s_line = response_line(FilterKind::kStrong, n, lat);
  const fft::FftPlan plan(n);
  std::vector<double> line(static_cast<std::size_t>(n));
  double mean_before = 0.0;
  for (int i = 0; i < n; ++i) {
    line[static_cast<std::size_t>(i)] =
        7.0 + std::cos(2.0 * kPi * 60.0 * i / n);  // mean + fast mode
    mean_before += line[static_cast<std::size_t>(i)];
  }
  filter_line_fft(plan, line, s_line);
  double mean_after = 0.0, wiggle = 0.0;
  for (int i = 0; i < n; ++i) {
    mean_after += line[static_cast<std::size_t>(i)];
    wiggle = std::max(wiggle, std::abs(line[static_cast<std::size_t>(i)] - 7.0));
  }
  EXPECT_NEAR(mean_after, mean_before, 1e-8);
  EXPECT_LT(wiggle, 0.05);  // the s=60 mode is almost annihilated at 85N
}

TEST(Serial, PairFilteringMatchesSingleLineFiltering) {
  // The two-for-one trick must give the same filtered lines even when the
  // two lines use different responses (strong at 80N paired with weak at
  // 65S, say).
  const int n = 144;
  const fft::FftPlan plan(n);
  const auto s_a = response_line(FilterKind::kStrong, n, 80.0 * kPi / 180.0);
  const auto s_b = response_line(FilterKind::kWeak, n, -65.0 * kPi / 180.0);
  Rng rng(41);
  std::vector<double> a(static_cast<std::size_t>(n)), b(a.size());
  for (double& v : a) v = rng.uniform(-3.0, 3.0);
  for (double& v : b) v = rng.uniform(-3.0, 3.0);
  auto a_pair = a, b_pair = b;
  filter_line_fft(plan, a, s_a);
  filter_line_fft(plan, b, s_b);
  filter_line_pair_fft(plan, a_pair, b_pair, s_a, s_b);
  EXPECT_LT(max_abs_diff(a, a_pair), 1e-11);
  EXPECT_LT(max_abs_diff(b, b_pair), 1e-11);
}

TEST(Serial, PairFlopsAreCheaperThanTwoSingles) {
  EXPECT_LT(fft_filter_pair_flops(144), 2.0 * fft_filter_flops(144));
}

TEST(Serial, ChunkConvolutionMatchesFull) {
  const int n = 48;
  const auto s_line = response_line(FilterKind::kStrong, n, 80.0 * kPi / 180.0);
  const auto kernel = kernel_from_response(s_line);
  Rng rng(77);
  std::vector<double> line(static_cast<std::size_t>(n));
  for (double& v : line) v = rng.uniform(-1.0, 1.0);
  std::vector<double> full = line;
  filter_line_convolution(full, kernel);
  std::vector<double> chunk(10);
  filter_chunk_convolution(line, kernel, 17, 10, chunk);
  for (int c = 0; c < 10; ++c)
    EXPECT_NEAR(chunk[static_cast<std::size_t>(c)],
                full[static_cast<std::size_t>(17 + c)], 1e-11);
}

TEST(Bank, LinesCoverExactlyTheFilteredRows) {
  const LatLonGrid grid(48, 30, 2);
  const FilterBank bank(grid, {{"a", FilterKind::kStrong},
                               {"b", FilterKind::kWeak}});
  EXPECT_EQ(bank.nvars(), 2);
  for (int j = 0; j < grid.nlat(); ++j) {
    EXPECT_EQ(bank.filtered(0, j), grid.poleward_of(j, 45.0));
    EXPECT_EQ(bank.filtered(1, j), grid.poleward_of(j, 60.0));
  }
  const auto expected =
      (bank.rows(0).size() + bank.rows(1).size()) * static_cast<std::size_t>(2);
  EXPECT_EQ(bank.lines().size(), expected);
  // lines_of partitions lines() by variable.
  EXPECT_EQ(bank.lines_of(0).size() + bank.lines_of(1).size(),
            bank.lines().size());
}

TEST(Bank, TablesMatchDirectEvaluation) {
  const LatLonGrid grid(48, 30, 1);
  const FilterBank bank(grid, {{"a", FilterKind::kStrong}});
  for (int j : bank.rows(0)) {
    const auto line = response_line(FilterKind::kStrong, 48, grid.lat_center(j));
    const auto banked = bank.response(0, j);
    for (std::size_t s = 0; s < line.size(); ++s)
      EXPECT_DOUBLE_EQ(banked[s], line[s]);
  }
}

// --- parallel variants vs serial reference across meshes -------------------

struct VariantCase {
  FilterAlgorithm algorithm;
  int rows;
  int cols;
};

class VariantSweep : public ::testing::TestWithParam<VariantCase> {};

/// Runs the full parallel filter on a deterministic global field and
/// compares every point against the serial reference.
TEST_P(VariantSweep, MatchesSerialReference) {
  const auto param = GetParam();
  const int nlon = 48, nlat = 24, nlev = 2;
  const LatLonGrid grid(nlon, nlat, nlev);
  const std::vector<FilteredVariable> vars = {{"s1", FilterKind::kStrong},
                                              {"w1", FilterKind::kWeak},
                                              {"s2", FilterKind::kStrong}};
  const FilterBank bank(grid, vars);

  auto value = [&](int v, int gi, int gj, int k) {
    return std::sin(0.37 * gi + 1.1 * v) * std::cos(0.21 * gj) + 0.13 * k +
           0.01 * gi * (v + 1);
  };

  // Serial reference on the global field.
  std::vector<std::vector<double>> reference(vars.size());
  {
    const fft::FftPlan plan(nlon);
    for (std::size_t v = 0; v < vars.size(); ++v) {
      auto& field = reference[v];
      field.resize(static_cast<std::size_t>(nlon) * nlat * nlev);
      for (int k = 0; k < nlev; ++k)
        for (int gj = 0; gj < nlat; ++gj)
          for (int gi = 0; gi < nlon; ++gi)
            field[static_cast<std::size_t>(gi) +
                  static_cast<std::size_t>(nlon) *
                      (static_cast<std::size_t>(gj) +
                       static_cast<std::size_t>(nlat) * k)] =
                value(static_cast<int>(v), gi, gj, k);
      for (int k = 0; k < nlev; ++k)
        for (int gj = 0; gj < nlat; ++gj) {
          if (!bank.filtered(static_cast<int>(v), gj)) continue;
          std::span<double> line(
              field.data() + static_cast<std::size_t>(nlon) *
                                 (static_cast<std::size_t>(gj) +
                                  static_cast<std::size_t>(nlat) * k),
              static_cast<std::size_t>(nlon));
          filter_line_fft(plan, line, bank.response(static_cast<int>(v), gj));
        }
    }
  }

  Machine machine(MachineProfile::intel_paragon());
  machine.set_recv_timeout_ms(20'000);
  machine.run(param.rows * param.cols, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, param.rows, param.cols);
    const Decomp2D decomp(nlon, nlat, param.rows, param.cols);
    const auto box = decomp.box(mesh.coord());

    std::vector<Array3D<double>> fields;
    std::vector<Array3D<double>*> ptrs;
    fields.reserve(vars.size());
    for (std::size_t v = 0; v < vars.size(); ++v) {
      fields.emplace_back(box.ni, box.nj, nlev, 1);
      for (int k = 0; k < nlev; ++k)
        for (int j = 0; j < box.nj; ++j)
          for (int i = 0; i < box.ni; ++i)
            fields.back()(i, j, k) =
                value(static_cast<int>(v), box.i0 + i, box.j0 + j, k);
    }
    for (auto& f : fields) ptrs.push_back(&f);

    auto filter = make_filter(param.algorithm, mesh, decomp, bank);
    filter->apply(ptrs);

    const double tol =
        param.algorithm == FilterAlgorithm::kConvolutionRing ||
                param.algorithm == FilterAlgorithm::kConvolutionTree ||
                param.algorithm == FilterAlgorithm::kConvolutionPartitioned
            ? 1e-9   // convolution accumulates in a different order
            : 1e-10;
    for (std::size_t v = 0; v < vars.size(); ++v)
      for (int k = 0; k < nlev; ++k)
        for (int j = 0; j < box.nj; ++j)
          for (int i = 0; i < box.ni; ++i) {
            const double expected =
                reference[v][static_cast<std::size_t>(box.i0 + i) +
                             static_cast<std::size_t>(nlon) *
                                 (static_cast<std::size_t>(box.j0 + j) +
                                  static_cast<std::size_t>(nlat) * k)];
            EXPECT_NEAR(fields[v](i, j, k), expected, tol)
                << algorithm_name(param.algorithm) << " mesh " << param.rows
                << "x" << param.cols << " v=" << v << " g=("
                << box.i0 + i << "," << box.j0 + j << "," << k << ")";
          }
  });
}

std::vector<VariantCase> variant_cases() {
  std::vector<VariantCase> cases;
  for (auto algorithm :
       {FilterAlgorithm::kConvolutionRing, FilterAlgorithm::kConvolutionTree,
        FilterAlgorithm::kFftTranspose, FilterAlgorithm::kFftBalanced,
        FilterAlgorithm::kConvolutionPartitioned}) {
    for (auto [r, c] : {std::pair{1, 1}, std::pair{1, 4}, std::pair{2, 2},
                        std::pair{3, 2}, std::pair{4, 3}, std::pair{6, 1}}) {
      cases.push_back({algorithm, r, c});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllMeshes, VariantSweep,
                         ::testing::ValuesIn(variant_cases()));

TEST(BalancedPlan, EveryRowHoldsNearIdealShare) {
  // Figure 2's guarantee — equation (3): after redistribution each
  // processor row holds ~ sum(R_j)/M lines.
  const int nlon = 48, nlat = 24, nlev = 3;
  const LatLonGrid grid(nlon, nlat, nlev);
  const FilterBank bank(grid, {{"a", FilterKind::kStrong},
                               {"b", FilterKind::kWeak},
                               {"c", FilterKind::kStrong}});
  for (auto [rows, cols] : {std::pair{2, 2}, std::pair{4, 3}, std::pair{6, 1},
                            std::pair{3, 4}}) {
    Machine machine(MachineProfile::ideal());
    machine.set_recv_timeout_ms(10'000);
    machine.run(rows * cols, [&, rows = rows, cols = cols](RankContext& ctx) {
      Communicator world(ctx);
      Mesh2D mesh(world, rows, cols);
      const Decomp2D decomp(nlon, nlat, rows, cols);
      const BalancedFilterPlan plan(mesh, decomp, bank);
      EXPECT_LE(plan.post_balance_ratio(), 1.0 + static_cast<double>(rows) /
                                                     static_cast<double>(
                                                         bank.lines().size()) +
                                               1e-9);
      const double ideal =
          static_cast<double>(bank.lines().size()) / rows;
      EXPECT_LE(std::abs(static_cast<double>(plan.held_lines().size()) - ideal),
                1.0);
    });
  }
}

TEST(BalancedPlan, RedistributeRestoreRoundTrip) {
  const int nlon = 24, nlat = 16, nlev = 2;
  const LatLonGrid grid(nlon, nlat, nlev);
  const FilterBank bank(grid, {{"a", FilterKind::kStrong}});
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(10'000);
  machine.run(4, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 4, 1);
    const Decomp2D decomp(nlon, nlat, 4, 1);
    const BalancedFilterPlan plan(mesh, decomp, bank);
    const auto box = decomp.box(mesh.coord());
    std::vector<double> chunks(plan.my_lines().size() *
                               static_cast<std::size_t>(box.ni));
    Rng rng(static_cast<std::uint64_t>(world.rank()) + 17);
    for (double& v : chunks) v = rng.uniform(-1.0, 1.0);
    const auto held = plan.redistribute(mesh, chunks);
    EXPECT_EQ(held.size(),
              plan.held_lines().size() * static_cast<std::size_t>(box.ni));
    const auto restored = plan.restore(mesh, held);
    ASSERT_EQ(restored.size(), chunks.size());
    for (std::size_t i = 0; i < chunks.size(); ++i)
      EXPECT_DOUBLE_EQ(restored[i], chunks[i]);
  });
}

TEST(RowTranspose, ToLinesToChunksRoundTrip) {
  const int nlon = 20, nlat = 8, nlev = 2;
  const LatLonGrid grid(nlon, nlat, nlev);
  const FilterBank bank(grid, {{"a", FilterKind::kStrong}});
  Machine machine(MachineProfile::ideal());
  machine.set_recv_timeout_ms(10'000);
  machine.run(4, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 1, 4);
    const Decomp2D decomp(nlon, nlat, 1, 4);
    const auto box = decomp.box(mesh.coord());
    std::vector<LineKey> lines;
    for (int j : bank.rows(0))
      for (int k = 0; k < nlev; ++k) lines.push_back({0, j, k});
    const RowTransposePlan plan(mesh, decomp, lines);

    std::vector<double> chunks(lines.size() * static_cast<std::size_t>(box.ni));
    // Global value encodes (line index, global i) so assembled lines can be
    // checked exactly.
    for (std::size_t q = 0; q < lines.size(); ++q)
      for (int i = 0; i < box.ni; ++i)
        chunks[q * static_cast<std::size_t>(box.ni) +
               static_cast<std::size_t>(i)] =
            1000.0 * static_cast<double>(q) + (box.i0 + i);

    const auto full = plan.to_lines(mesh, chunks);
    ASSERT_EQ(full.size(),
              plan.owned_lines().size() * static_cast<std::size_t>(nlon));
    // Find which global line indexes I own and verify assembly.
    std::size_t p = 0;
    for (std::size_t q = 0; q < lines.size(); ++q) {
      if (static_cast<int>(q % 4) != mesh.coord().col) continue;
      for (int gi = 0; gi < nlon; ++gi)
        EXPECT_DOUBLE_EQ(full[p * static_cast<std::size_t>(nlon) +
                              static_cast<std::size_t>(gi)],
                         1000.0 * static_cast<double>(q) + gi);
      ++p;
    }

    const auto back = plan.to_chunks(mesh, full);
    ASSERT_EQ(back.size(), chunks.size());
    for (std::size_t i = 0; i < chunks.size(); ++i)
      EXPECT_DOUBLE_EQ(back[i], chunks[i]);
  });
}

TEST(BalancedFilter, SetupCostIsRecordedOnce) {
  const LatLonGrid grid(24, 16, 2);
  const FilterBank bank(grid, {{"a", FilterKind::kStrong}});
  Machine machine(MachineProfile::intel_paragon());
  machine.set_recv_timeout_ms(10'000);
  machine.run(4, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 2, 2);
    const Decomp2D decomp(24, 16, 2, 2);
    FftBalancedFilter filter(mesh, decomp, bank);
    EXPECT_GT(filter.setup_cost_sec(), 0.0);
  });
}

// --- implicit-zonal extension -----------------------------------------------

TEST(ImplicitZonal, ResponseDampsLikeAnImplicitOperator) {
  // S(0) = 1; monotone decreasing to the Nyquist wavenumber; in (0, 1].
  const double k = 5.0;
  const int n = 48;
  EXPECT_DOUBLE_EQ(ImplicitZonalFilter::response(k, 0, n), 1.0);
  double prev = 1.0;
  for (int s = 1; s <= n / 2; ++s) {
    const double r = ImplicitZonalFilter::response(k, s, n);
    EXPECT_GT(r, 0.0);
    EXPECT_LE(r, prev + 1e-14);
    prev = r;
  }
  EXPECT_NEAR(ImplicitZonalFilter::response(k, n / 2, n), 1.0 / (1 + 4 * k),
              1e-12);
}

TEST(ImplicitZonal, PreservesZonalMeanAndDampsNoise) {
  const int nlon = 48, nlat = 24, nlev = 2;
  const LatLonGrid grid(nlon, nlat, nlev);
  const FilterBank bank(grid, {{"a", FilterKind::kStrong}});
  Machine machine(MachineProfile::cray_t3d());
  machine.set_recv_timeout_ms(20'000);
  machine.run(8, [&](RankContext& ctx) {
    Communicator world(ctx);
    Mesh2D mesh(world, 2, 4);
    const Decomp2D decomp(nlon, nlat, 2, 4);
    const auto box = decomp.box(mesh.coord());
    Array3D<double> field(box.ni, box.nj, nlev, 1);
    // Mean 5 plus Nyquist-frequency noise.
    for (int k = 0; k < nlev; ++k)
      for (int j = 0; j < box.nj; ++j)
        for (int i = 0; i < box.ni; ++i)
          field(i, j, k) = 5.0 + ((box.i0 + i) % 2 == 0 ? 1.0 : -1.0);

    auto filter =
        make_filter(FilterAlgorithm::kImplicitZonal, mesh, decomp, bank);
    Array3D<double>* fields[] = {&field};
    filter->apply(fields);

    for (int k = 0; k < nlev; ++k) {
      for (int j = 0; j < box.nj; ++j) {
        const int gj = box.j0 + j;
        double mean = 0.0, wiggle = 0.0;
        for (int i = 0; i < box.ni; ++i) {
          mean += field(i, j, k);
          wiggle = std::max(wiggle, std::abs(field(i, j, k) - 5.0));
        }
        // Zonal mean preserved everywhere (chunk mean equals 5 because the
        // filtered result is mean + damped alternating mode).
        EXPECT_NEAR(mean / box.ni, 5.0, 1e-9);
        if (bank.filtered(0, gj)) {
          EXPECT_LT(wiggle, 0.15);  // Nyquist mode strongly damped
        } else {
          EXPECT_NEAR(wiggle, 1.0, 1e-12);  // untouched outside the band
        }
      }
    }
  });
}

TEST(ImplicitZonal, DecompositionInvariant) {
  const int nlon = 36, nlat = 16, nlev = 2;
  const LatLonGrid grid(nlon, nlat, nlev);
  const FilterBank bank(grid, {{"a", FilterKind::kStrong},
                               {"b", FilterKind::kWeak}});
  auto run = [&](int rows, int cols) {
    std::vector<double> out(static_cast<std::size_t>(nlon) * nlat * nlev *
                            2);
    Machine machine(MachineProfile::ideal());
    machine.set_recv_timeout_ms(20'000);
    machine.run(rows * cols, [&](RankContext& ctx) {
      Communicator world(ctx);
      Mesh2D mesh(world, rows, cols);
      const Decomp2D decomp(nlon, nlat, rows, cols);
      const auto box = decomp.box(mesh.coord());
      std::vector<Array3D<double>> fields;
      std::vector<Array3D<double>*> ptrs;
      for (int v = 0; v < 2; ++v) {
        fields.emplace_back(box.ni, box.nj, nlev, 1);
        for (int k = 0; k < nlev; ++k)
          for (int j = 0; j < box.nj; ++j)
            for (int i = 0; i < box.ni; ++i)
              fields.back()(i, j, k) = std::sin(0.5 * (box.i0 + i) + v) +
                                       0.1 * (box.j0 + j) + 0.2 * k;
      }
      for (auto& f : fields) ptrs.push_back(&f);
      auto filter =
          make_filter(FilterAlgorithm::kImplicitZonal, mesh, decomp, bank);
      filter->apply(ptrs);
      for (int v = 0; v < 2; ++v)
        for (int k = 0; k < nlev; ++k)
          for (int j = 0; j < box.nj; ++j)
            for (int i = 0; i < box.ni; ++i)
              out[static_cast<std::size_t>(v) +
                  2 * (static_cast<std::size_t>(box.i0 + i) +
                       static_cast<std::size_t>(nlon) *
                           (static_cast<std::size_t>(box.j0 + j) +
                            static_cast<std::size_t>(nlat) * k))] =
                  fields[static_cast<std::size_t>(v)](i, j, k);
    });
    return out;
  };
  const auto serial = run(1, 1);
  const auto parallel = run(2, 3);
  EXPECT_LT(max_abs_diff(serial, parallel), 1e-9);
}

TEST(Factory, WrongFieldCountThrows) {
  const LatLonGrid grid(24, 16, 2);
  const FilterBank bank(grid, {{"a", FilterKind::kStrong}});
  Machine machine(MachineProfile::ideal());
  EXPECT_THROW(
      machine.run(1,
                  [&](RankContext& ctx) {
                    Communicator world(ctx);
                    Mesh2D mesh(world, 1, 1);
                    const Decomp2D decomp(24, 16, 1, 1);
                    auto filter = make_filter(FilterAlgorithm::kFftTranspose,
                                              mesh, decomp, bank);
                    filter->apply({});  // bank has one variable
                  }),
      ConfigError);
}

}  // namespace
}  // namespace agcm::filter
