// Unit tests for the util library: errors, formatting, RNG, statistics,
// tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace agcm {
namespace {

TEST(Error, CheckConfigThrowsWithContext) {
  EXPECT_NO_THROW(check_config(true, "fine"));
  try {
    check_config(false, "bad knob");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("bad knob"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw DataError("x"), Error);
  EXPECT_THROW(throw CommError("x"), Error);
  EXPECT_THROW(throw ConfigError("x"), Error);
}

TEST(Format, ReplacesPlaceholdersInOrder) {
  EXPECT_EQ(strformat("a={} b={}", 1, "two"), "a=1 b=two");
}

TEST(Format, ExtraPlaceholdersEmittedVerbatim) {
  EXPECT_EQ(strformat("x={} y={}", 7), "x=7 y={}");
}

TEST(Format, NoPlaceholders) { EXPECT_EQ(strformat("plain"), "plain"); }

TEST(Format, FixedPrecision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-0.5, 0), "-0");  // printf semantics
  EXPECT_EQ(fixed(100.0, 1), "100.0");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRangeAndCoversAll) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, StreamsAreIndependentAndReproducible) {
  Rng a = Rng::for_stream(42, 1);
  Rng a2 = Rng::for_stream(42, 1);
  Rng b = Rng::for_stream(42, 2);
  EXPECT_EQ(a(), a2());
  EXPECT_NE(a(), b());  // extremely unlikely to collide
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Stats, LoadImbalanceMatchesPaperDefinition) {
  // Figure 5A: loads 65, 24, 38, 15 -> avg 35.5, (65-35.5)/35.5 = 0.8310...
  const double loads[] = {65, 24, 38, 15};
  EXPECT_NEAR(load_imbalance(loads), (65.0 - 35.5) / 35.5, 1e-12);
}

TEST(Stats, LoadImbalanceUniformIsZero) {
  const double loads[] = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(load_imbalance(loads), 0.0);
}

TEST(Stats, LoadImbalanceEmptyAndZero) {
  EXPECT_DOUBLE_EQ(load_imbalance({}), 0.0);
  const double zeros[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(load_imbalance(zeros), 0.0);
}

TEST(Stats, EfficiencyIsInverseOfImbalance) {
  const double loads[] = {2.0, 4.0};
  EXPECT_DOUBLE_EQ(load_efficiency(loads), 0.75);
}

TEST(Stats, Percentile) {
  const double v[] = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, MaxAbsDiffAndRelL2) {
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {1.0, 2.5, 3.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_NEAR(rel_l2_error(a, b), 0.5 / std::sqrt(1 + 6.25 + 9), 1e-12);
  EXPECT_DOUBLE_EQ(rel_l2_error(a, a), 0.0);
}

TEST(Table, RendersAlignedGrid) {
  Table t("Demo", {"col", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("| longer |"), std::string::npos);
  EXPECT_NE(s.find("|      x |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t("T", {"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.render().find("| 1 |"), std::string::npos);
}

TEST(Table, HelperFormatters) {
  EXPECT_EQ(Table::num(1.234, 2), "1.23");
  EXPECT_EQ(Table::paper_vs(10.0, 9.5, 1), "10.0 / 9.5");
  EXPECT_EQ(Table::pct(0.37), "37%");
}

}  // namespace
}  // namespace agcm
